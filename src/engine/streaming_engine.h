// Copyright (c) the SLADE reproduction authors.
// Streaming admission on top of the batch decomposition engine.
//
// The batch engine answers one workload at a time; a long-lived platform
// receives submissions continuously, from many requesters at once. The
// streaming engine sits in front of it: Submit() enqueues a requester's
// crowdsourcing tasks and returns a future immediately; an admission worker
// accumulates submissions into micro-batches, flushes a micro-batch when it
// grows big enough or its oldest submission has waited long enough, solves
// it with one DecompositionEngine::SolveBatch call (the OPQ cache stays
// warm across every flush of the engine's lifetime), and cuts the merged
// plan back into per-requester slices with PlanSplitter -- each future
// resolves to the slice covering exactly its submission's tasks.
//
// With StreamingOptions::sharing == BatchSharing::kIsolated (the default)
// a submission's plan is byte-for-byte what the paper's OPQ-Extended
// solver would produce for it alone: micro-batching changes latency and
// throughput, never the answer. kPooled lets concurrent submissions tile
// into shared bins for a cheaper global plan, at the price of slices that
// overlap in bins (see plan_splitter.h on cost attribution).
//
// Admission is resource-governed: StreamingOptions::resources bounds the
// pending queue (atomic tasks and estimated bytes ahead of the solver) and
// picks what happens when a submission does not fit -- block until room,
// reject it, or shed the oldest pending submission (both failure modes are
// clean ResourceExhausted futures, never hangs). A submission that cannot
// be admitted also kicks the worker to flush, so room opens as fast as the
// solver can drain. Backpressure decides *which* submissions are answered,
// never *what* the answer is: under kIsolated every admitted submission's
// plan is still the standalone OPQ-Extended plan.
//
// StreamingOptions::fairness adds multi-tenancy on top: per-tenant pending
// quotas and a weighted deficit-round-robin flush scheduler that keeps one
// heavy requester from starving many small ones (see FairnessOptions).

#ifndef SLADE_ENGINE_STREAMING_ENGINE_H_
#define SLADE_ENGINE_STREAMING_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "durability/hooks.h"
#include "engine/decomposition_engine.h"
#include "engine/plan_splitter.h"
#include "engine/profile_registry.h"
#include "engine/resource_governor.h"

namespace slade {

/// \brief Multi-tenant fairness: per-tenant quotas and a weighted-fair
/// (deficit round-robin) flush scheduler.
///
/// With fairness off (the default) the engine behaves exactly as before:
/// one FIFO pending queue, each flush takes everything pending. With
/// fairness on, submissions queue per tenant (tenant = requester id) and
/// each micro-batch is assembled by deficit round-robin: every tenant
/// visit earns `quantum_atomic_tasks * weight` of atomic-task credit, and
/// whole submissions are taken FIFO from the tenant's queue while credit
/// lasts, up to the flush caps per micro-batch. One tenant with a huge
/// backlog therefore cannot push other tenants' work behind all of its
/// own: every flush interleaves tenants in proportion to their weights.
///
/// Because placement under BatchSharing::kIsolated is independent of how
/// submissions are micro-batched, fairness changes *when* a submission is
/// answered, never *what* its plan is: every slice stays placement-
/// identical to the fairness-off (and standalone OPQ-Extended) plan.
///
/// Per-tenant pending quotas bound how much one tenant may hold of the
/// shared queue. A submission over its tenant's quota is rejected
/// (ResourceExhausted) regardless of the global backpressure policy --
/// only the offending tenant is touched, with one exception mirroring the
/// global empty-queue rule: a tenant with an empty queue always admits one
/// submission, so a quota smaller than one submission cannot starve it.
///
/// Tenant state (counters + an idle queue shell) persists for the
/// engine's lifetime; with unbounded tenant cardinality prefer a
/// front-end that maps users onto a bounded tenant set.
struct FairnessOptions {
  bool enabled = false;
  /// Atomic-task credit a tenant earns per scheduler visit; floored at 1.
  uint64_t quantum_atomic_tasks = 1024;
  /// Weight of tenants absent from `weights`; floored at 1.
  uint64_t default_weight = 1;
  /// Per-tenant weight overrides (0 entries are treated as 1).
  std::map<std::string, uint64_t> weights;
  /// Per-tenant pending caps (0 = unbounded).
  uint64_t tenant_max_pending_atomic_tasks = 0;
  uint64_t tenant_max_pending_bytes = 0;
};

/// \brief Per-tenant admission / billing counters, readable at any time
/// via tenant_stats() when fairness is enabled.
struct TenantStats {
  std::string tenant;
  uint64_t weight = 1;
  uint64_t submissions = 0;     ///< admitted (sheds counted; rejects not)
  uint64_t tasks = 0;
  uint64_t atomic_tasks = 0;
  uint64_t delivered = 0;       ///< futures resolved with a plan slice
  uint64_t flushes = 0;         ///< micro-batches containing this tenant
  uint64_t rejected_quota = 0;  ///< rejected by the per-tenant quota
  uint64_t shed = 0;            ///< evicted by kShedOldest backpressure
  /// Sum of delivered slice costs: what the tenant is billed.
  double billed_cost = 0.0;
  /// The tenant's proportional share of the platform's batch costs. Under
  /// kIsolated sharing this equals billed_cost; under kPooled it is lower
  /// and the difference is the sharing discount.
  double platform_cost = 0.0;
  // --- snapshot of the tenant's pending queue ---
  uint64_t pending_submissions = 0;
  uint64_t pending_atomic_tasks = 0;
  uint64_t pending_bytes = 0;
};

/// \brief Micro-batch admission policy. Both size caps are floored at 1 by
/// the engine (0 would mean "flush before anything is pending").
struct StreamingOptions {
  /// Flush when the pending micro-batch holds at least this many atomic
  /// tasks...
  size_t max_pending_atomic_tasks = 4096;
  /// ...or at least this many submissions...
  size_t max_pending_submissions = 256;
  /// ...or when the oldest pending submission has waited this long.
  double max_delay_seconds = 0.05;
  /// Bin-sharing policy of the underlying batch solves. kIsolated keeps
  /// every submission's plan identical to a standalone OPQ-Extended solve;
  /// kPooled shares bins across the micro-batch for a cheaper total.
  BatchSharing sharing = BatchSharing::kIsolated;
  /// Worker threads of the wrapped DecompositionEngine (0 = default).
  uint32_t num_threads = 0;
  /// Passed through to OPQ builds on cache misses.
  uint64_t opq_node_budget = 50'000'000;
  /// Resource governance: queue_* + backpressure bound admission (see the
  /// file comment); cache_* bound the wrapped engine's OPQ cache. Defaults
  /// are unbounded, reproducing the ungoverned behavior exactly.
  ResourceOptions resources;
  /// Multi-tenant quotas and weighted-fair flush scheduling (see
  /// FairnessOptions). Disabled by default: the single-FIFO behavior.
  FairnessOptions fairness;
  /// Durability seam (see durability/hooks.h): when set, every admission
  /// is journaled durably before Submit hands out its future, outcomes
  /// are journaled (one durability barrier per micro-batch) before any
  /// future resolves, and duplicate submission ids are answered from the
  /// journal instead of re-solved. Non-owning; must outlive the engine.
  /// nullptr = the previous in-memory-only behavior (duplicate ids are
  /// then only detected while the original is still in flight).
  DurabilityHooks* durability = nullptr;
  /// Multi-platform seam (see engine/profile_registry.h): when set, every
  /// submission is routed to a registered platform under `routing` and
  /// solved against that platform's admission-epoch profile snapshot --
  /// the constructor profile is unused on this path. The engine
  /// subscribes to epoch changes and evicts exactly the retired epoch's
  /// OPQ cache entries. Non-owning; must outlive the engine. nullptr =
  /// single-profile serving, byte-for-byte the previous behavior.
  ProfileRegistry* registry = nullptr;
  /// Routing policy applied when `registry` is set.
  RoutingPolicy routing = RoutingPolicy::kCheapest;
};

/// \brief Admission counters, readable at any time via stats().
struct StreamingStats {
  uint64_t submissions = 0;  ///< admitted (sheds counted; rejects not)
  uint64_t tasks = 0;
  uint64_t atomic_tasks = 0;
  uint64_t flushes = 0;
  uint64_t flushes_by_size = 0;      ///< atomic-task or submission cap hit
  uint64_t flushes_by_deadline = 0;  ///< oldest submission timed out
  uint64_t flushes_by_drain = 0;     ///< Flush()/Drain()/shutdown
  /// Cumulative SolveBatch wall time and solved cost across all flushes.
  double solve_seconds = 0.0;
  double total_cost = 0.0;

  // --- backpressure (see StreamingOptions::resources) ---
  uint64_t rejected = 0;  ///< Submit/TrySubmit failed fast: queue full
  uint64_t shed = 0;      ///< admitted, then evicted by kShedOldest
  uint64_t blocked = 0;   ///< Submit calls that had to wait for room
  /// Rejected by a per-tenant quota (fairness enabled; not in `rejected`).
  uint64_t rejected_tenant_quota = 0;
  /// Submissions answered from the journal because their id had already
  /// completed (no re-solve, no re-bill).
  uint64_t duplicate_hits = 0;
  /// Queue occupancy at the stats() snapshot (pending, not yet flushed).
  uint64_t queue_submissions = 0;
  uint64_t queue_atomic_tasks = 0;
  uint64_t queue_bytes = 0;
  /// High-water marks of the pending queue across the engine's lifetime.
  uint64_t peak_queue_atomic_tasks = 0;
  uint64_t peak_queue_bytes = 0;
};

/// \brief Long-lived streaming front end over DecompositionEngine.
///
/// Thread-safe: any number of threads may call Submit/TrySubmit/Flush/
/// Drain concurrently. Micro-batches are solved one at a time, in
/// admission order, on a dedicated worker thread; the solve itself
/// parallelizes across shards on the wrapped engine's pool. The destructor
/// drains: every future obtained from Submit() is fulfilled before the
/// engine goes away.
class StreamingEngine {
 public:
  /// The platform's bin profile is fixed for the engine's lifetime: every
  /// submission is decomposed against `profile`, and the OPQ cache warms
  /// up across all of them. With StreamingOptions::registry set the
  /// profile instead comes from the routed platform's current epoch per
  /// submission and `profile` is only a fallback identity.
  explicit StreamingEngine(BinProfile profile, StreamingOptions options = {});
  ~StreamingEngine();

  StreamingEngine(const StreamingEngine&) = delete;
  StreamingEngine& operator=(const StreamingEngine&) = delete;

  /// Admits one submission (one requester, one or more crowdsourcing
  /// tasks) and returns immediately -- except under BackpressurePolicy::
  /// kBlock with a full queue, where it waits for room. The future
  /// resolves, after the owning micro-batch is solved, to the requester's
  /// slice of the merged plan -- local ids ordered task by task as given
  /// here, with flush_id and latency_seconds filled in. An empty `tasks`
  /// fails the future with InvalidArgument without touching the pending
  /// batch; a queue-full rejection (kReject) or a later kShedOldest
  /// eviction fails it with ResourceExhausted.
  ///
  /// `submission_id` makes the submission idempotent: a duplicate of an
  /// id that already completed resolves immediately to the original
  /// outcome (RequesterPlan::duplicate set, nothing re-solved or
  /// re-billed); a duplicate of an id still in flight fails with
  /// AlreadyExists. With durability on (StreamingOptions::durability) an
  /// empty id is replaced by a generated one, the admission is journaled
  /// durably before this returns, and idempotency survives restarts;
  /// without it, ids are only tracked while in flight.
  ///
  /// `platform_hint` (registry mode only) names the serving platform
  /// explicitly -- the HTTP `platform` field; it overrides the routing
  /// policy and fails the future with NotFound when that platform is not
  /// registered. The serving (platform, epoch) is pinned at admission and
  /// echoed on the delivered RequesterPlan.
  std::future<Result<RequesterPlan>> Submit(
      std::string requester_id, std::vector<CrowdsourcingTask> tasks,
      std::string submission_id = {}, std::string platform_hint = {});

  /// Non-blocking admission: returns ResourceExhausted instead of a future
  /// when the queue has no room, regardless of the configured backpressure
  /// policy (it never waits and never sheds), and AlreadyExists for a
  /// duplicate of an in-flight id. On success the returned future behaves
  /// exactly like Submit()'s.
  Result<std::future<Result<RequesterPlan>>> TrySubmit(
      std::string requester_id, std::vector<CrowdsourcingTask> tasks,
      std::string submission_id = {}, std::string platform_hint = {});

  /// Re-admits submissions recovered from the journal on startup, in the
  /// given order (their admission order at recovery time, preserving the
  /// tenant interleaving the fairness scheduler had produced). Uses
  /// kBlock semantics so recovered work cannot be dropped by
  /// backpressure; ids whose outcome is already known resolve through
  /// the duplicate path without a re-solve. The original clients are
  /// gone, so the futures are discarded — the plans are still solved,
  /// journaled and billed. Returns the number re-admitted.
  size_t ReplayRecovered(std::vector<RecoveredSubmission> recovered);

  /// Asks the worker to flush whatever is pending, without waiting for
  /// the solve. No-op when nothing is pending.
  void Flush();

  /// Flushes and blocks until every submission admitted before this call
  /// has its future fulfilled.
  void Drain();

  StreamingStats stats() const;
  /// Per-tenant counters in tenant-id order; empty when fairness is
  /// disabled (tenant tracking would grow without bound otherwise).
  std::vector<TenantStats> tenant_stats() const;
  const OpqCache& cache() const { return engine_.cache(); }
  /// The governor bounding the pending admission queue.
  const ResourceGovernor& governor() const { return governor_; }
  const StreamingOptions& options() const { return options_; }

 private:
  struct Pending {
    std::string requester;
    std::string submission_id;  ///< idempotency id; empty = anonymous
    std::vector<CrowdsourcingTask> tasks;
    size_t num_atomic = 0;
    uint64_t bytes = 0;  ///< estimated queue charge for this submission
    uint64_t seq = 0;    ///< global admission order (fairness sheds/ages)
    std::chrono::steady_clock::time_point admitted;
    std::promise<Result<RequesterPlan>> promise;
    /// Registry mode: the serving (platform, epoch) pinned at admission.
    /// The shared profile snapshot keeps this submission solving under
    /// its admission epoch even if a promotion lands before its flush.
    std::string platform;
    uint64_t epoch = 0;
    uint64_t salt = 0;
    std::shared_ptr<const BinProfile> profile;
  };

  /// One tenant's pending queue and lifetime counters (fairness mode).
  struct TenantState {
    std::deque<Pending> queue;
    uint64_t deficit = 0;  ///< unspent DRR credit, in atomic tasks
    bool in_ring = false;
    uint64_t pending_atomic = 0;
    uint64_t pending_bytes = 0;
    TenantStats counters;  ///< pending_* snapshot fields unused here
  };

  enum class FlushReason { kSize, kDeadline, kDrain };

  std::future<Result<RequesterPlan>> SubmitWithPolicy(
      std::string requester_id, std::vector<CrowdsourcingTask> tasks,
      BackpressurePolicy policy, Status* rejected,
      std::string submission_id, std::string platform_hint);
  /// True when `pending` may be admitted now: the queue is empty (a lone
  /// submission is never deadlocked by a cap smaller than itself) or the
  /// governor has room for it. Requires mutex_ held.
  bool HasRoomLocked(const Pending& pending) const;
  /// True iff anything is pending, in either queueing mode.
  bool AnyPendingLocked() const;
  /// Number of pending submissions, in either queueing mode.
  size_t PendingCountLocked() const;
  /// Admission time of the oldest pending submission; only valid when
  /// AnyPendingLocked().
  std::chrono::steady_clock::time_point OldestAdmittedLocked() const;
  /// Appends `pending` to the right queue and charges all counters.
  void EnqueueLocked(Pending pending);
  /// Removes and returns the globally oldest pending submission (for
  /// kShedOldest), releasing its charges; only valid when pending.
  Pending PopOldestLocked();
  /// Cuts the next micro-batch out of the pending state, releasing its
  /// charges: everything pending (fairness off) or a deficit-round-robin
  /// selection bounded by the flush caps (fairness on).
  std::vector<Pending> AssembleBatchLocked();
  uint64_t WeightOf(const std::string& tenant) const;
  void WorkerLoop();
  /// True when the pending batch must flush now on size alone (the
  /// deadline path is handled by the worker's timed wait).
  bool SizeTriggeredLocked() const;
  void ProcessBatch(std::vector<Pending> batch, FlushReason reason);

  const StreamingOptions options_;
  const BinProfile profile_;
  DecompositionEngine engine_;
  ResourceGovernor governor_;  ///< pending-queue bytes / atomic tasks

  mutable std::mutex mutex_;
  std::condition_variable wake_;     ///< worker: pending work or shutdown
  std::condition_variable drained_;  ///< Drain(): everything fulfilled
  std::condition_variable admit_;    ///< blocked Submit: room freed
  std::deque<Pending> pending_;      ///< fairness off: the one FIFO queue
  // Fairness on: per-tenant queues + the round-robin ring of tenants with
  // pending work. pending_count_ tracks submissions across all tenants.
  std::map<std::string, TenantState> tenants_;
  std::deque<std::string> ring_;
  /// Submission ids currently in flight (admitted or being admitted, not
  /// yet resolved): the in-process half of idempotency. A duplicate of a
  /// member fails with AlreadyExists; ids leave the set when their
  /// outcome is published (after the journal's durability barrier).
  std::set<std::string> active_ids_;
  size_t pending_count_ = 0;
  uint64_t next_seq_ = 0;
  size_t pending_atomic_ = 0;
  bool flush_requested_ = false;
  bool shutdown_ = false;
  size_t in_flight_ = 0;  ///< submissions handed to ProcessBatch
  uint64_t next_flush_id_ = 0;
  StreamingStats stats_;

  /// Registry-mode epoch subscription: evicts the retired epoch's cache
  /// entries on promotion/retire. 0 = not subscribed.
  uint64_t epoch_listener_id_ = 0;

  std::thread worker_;  ///< last member: joins before the rest dies
};

}  // namespace slade

#endif  // SLADE_ENGINE_STREAMING_ENGINE_H_
