// Copyright (c) the SLADE reproduction authors.
// Batched, sharded, thread-parallel decomposition of whole workloads.
//
// The paper solves one large-scale crowdsourcing task at a time; a platform
// serving many requesters receives thousands of them per batch. Because
// atomic tasks are independent boolean questions (Section 3.1), a batch of
// crowdsourcing tasks is itself one big heterogeneous SLADE instance, so
// the engine pools every atomic task in the batch, shards the pool by the
// Algorithm 4 threshold groups, solves each shard with the Algorithm 3
// assignment under the shard's optimal priority queue, and merges the
// per-shard plans. Sharding across the whole batch (instead of per input
// task) means:
//   * one OPQ build per threshold group for the entire batch, served
//     through OpqCache so repeated batches never re-run Algorithm 2;
//   * shards are independent, so they run in parallel on common/ThreadPool;
//   * leftover-padding waste (Algorithm 3 lines 8-10) is paid once per
//     shard, not once per input task.

#ifndef SLADE_ENGINE_DECOMPOSITION_ENGINE_H_
#define SLADE_ENGINE_DECOMPOSITION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/opq_cache.h"
#include "engine/resource_governor.h"
#include "solver/plan.h"
#include "solver/plan_arena.h"
#include "solver/solver.h"

namespace slade {

/// \brief How the batch's atomic tasks may share bins.
enum class BatchSharing {
  /// Pool the whole batch: shard = Algorithm 4 threshold group over the
  /// batch-wide threshold range, so atomic tasks from different input tasks
  /// (and different requesters) tile into the same bins. Cheapest: leftover
  /// padding (Algorithm 3 lines 8-10) is paid once per group for the whole
  /// batch.
  kPooled,
  /// Isolate input tasks: shard = (input task, group of the task's own
  /// Algorithm 4 partition). No bin ever mixes atomic tasks from two input
  /// tasks, and each input task's sub-plan is exactly what OPQ-Extended
  /// (Algorithm 5) would produce for it alone -- the merged plan equals
  /// SolveBatchSequential's placement for placement. Costs a little more
  /// than kPooled (per-task padding) but keeps per-requester billing
  /// exact, which is what the streaming front end needs.
  kIsolated,
};

const char* BatchSharingName(BatchSharing sharing);

/// \brief Tuning knobs for the batch engine.
struct EngineOptions {
  /// Worker threads for per-shard solves; 0 = ThreadPool::DefaultThreads().
  /// The merged plan is identical regardless of thread count: shards are
  /// formed deterministically and merged in group order.
  uint32_t num_threads = 0;
  /// Passed through to BuildOpq on cache misses.
  uint64_t opq_node_budget = 50'000'000;
  /// Bin-sharing policy across input tasks (see BatchSharing).
  BatchSharing sharing = BatchSharing::kPooled;
  /// Capacity limits; the cache_* fields bound the engine's OpqCache
  /// (defaults keep it unbounded, the pre-governor behavior). Bounding the
  /// cache changes memory and speed, never the plan: an evicted queue is
  /// simply rebuilt on the next request for its key.
  ResourceOptions resources;
};

/// \brief Per-shard solve statistics (one shard = one threshold group with
/// at least one atomic task routed to it).
struct ShardStats {
  /// Index of the threshold group in the Algorithm 4 partition (batch-wide
  /// under kPooled, the input task's own partition under kIsolated).
  size_t group = 0;
  /// Input-task index the shard belongs to under kIsolated;
  /// kWholeBatch under kPooled (groups span the whole batch there).
  static constexpr size_t kWholeBatch = static_cast<size_t>(-1);
  size_t input_task = kWholeBatch;
  /// Interval upper bound tau and the surrogate threshold 1 - e^{-tau}
  /// the shard's queue was built for.
  double theta_upper = 0.0;
  double surrogate_threshold = 0.0;
  size_t num_atomic_tasks = 0;
  double cost = 0.0;
  uint64_t bins_posted = 0;
  /// Wall time of this shard's queue lookup + assignment.
  double seconds = 0.0;
  /// True iff the shard's queue came out of the OpqCache without a build.
  bool opq_cache_hit = false;
};

/// \brief The merged result of a batch solve.
///
/// The merged plan addresses atomic tasks by *global* id: the atomic tasks
/// of input task `k` occupy ids [task_offsets[k], task_offsets[k+1]).
///
/// The plan is columnar (see solver/plan_arena.h): shard plans are stamped
/// straight into flat columns and merged by column concatenation, so the
/// whole batch costs O(arena chunks) allocations instead of one per
/// placement. Cold-path consumers convert with `plan.ToPlan()`.
struct BatchReport {
  ColumnarPlan plan;
  std::vector<size_t> task_offsets;  // size = #input tasks + 1
  double total_cost = 0.0;
  uint64_t total_bins = 0;
  double wall_seconds = 0.0;
  /// OpqCache traffic attributable to this batch.
  uint64_t opq_cache_hits = 0;
  uint64_t opq_cache_misses = 0;
  std::vector<ShardStats> shards;

  size_t num_tasks() const {
    return task_offsets.empty() ? 0 : task_offsets.size() - 1;
  }
  size_t num_atomic_tasks() const {
    return task_offsets.empty() ? 0 : task_offsets.back();
  }

  /// Human-readable multi-line summary (totals + per-shard table).
  std::string ToString() const;
};

/// \brief Concatenates a batch into the single heterogeneous task the
/// merged plan decomposes (global ids follow the batch order). Fails on an
/// empty batch.
Result<CrowdsourcingTask> ConcatenateTasks(
    const std::vector<CrowdsourcingTask>& tasks);

/// \brief The batch decomposition engine. Reusable across batches; the
/// OPQ cache persists, so a stream of batches from the same platform
/// profile amortizes every Algorithm 2 enumeration across the stream.
class DecompositionEngine {
 public:
  explicit DecompositionEngine(EngineOptions options = {});
  ~DecompositionEngine();

  DecompositionEngine(const DecompositionEngine&) = delete;
  DecompositionEngine& operator=(const DecompositionEngine&) = delete;

  /// Decomposes the whole batch under `profile`. Deterministic: the merged
  /// plan depends only on (tasks, profile, options.sharing), never on
  /// thread count, cache state or `opq_salt`. Fails on an empty batch or
  /// invalid thresholds.
  ///
  /// `opq_salt` namespaces this solve's OPQ cache entries (see
  /// OpqCache::GetOrBuild): multi-platform callers pass the serving
  /// (platform, epoch) salt so an epoch promotion can evict exactly its
  /// own builds. 0 (the default) is the single-profile namespace.
  Result<BatchReport> SolveBatch(const std::vector<CrowdsourcingTask>& tasks,
                                 const BinProfile& profile,
                                 uint64_t opq_salt = 0);

  const OpqCache& cache() const { return cache_; }
  /// Mutable cache access for targeted epoch invalidation
  /// (OpqCache::EvictBySalt); eviction never changes any plan.
  OpqCache& mutable_cache() { return cache_; }
  size_t num_threads() const { return pool_->num_threads(); }

  /// Ledger of plan-arena bytes: shard and merged plans charge this
  /// governor while a solve is in flight (charges are detached before a
  /// report escapes, so `counters().peak_bytes` records the high-water
  /// mark of plan materialization memory per batch).
  GovernorCounters plan_arena_counters() const {
    return plan_governor_.counters();
  }

 private:
  EngineOptions options_;
  OpqCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  ResourceGovernor plan_governor_;
};

/// \brief Reference implementation: solves each input task independently
/// with OPQ-Extended (Algorithm 5), no memoization, no threading, and
/// merges the per-task plans with global ids. This is what a platform
/// looping the paper's solver over its queue would do; bench_engine_batch
/// reports the engine's speedup against it.
Result<BatchReport> SolveBatchSequential(
    const std::vector<CrowdsourcingTask>& tasks, const BinProfile& profile,
    const SolverOptions& options = {});

}  // namespace slade

#endif  // SLADE_ENGINE_DECOMPOSITION_ENGINE_H_
