// Copyright (c) the SLADE reproduction authors.
// Memoized optimal-priority-queue builds, keyed by (profile, threshold).
//
// Building an OPQ (Algorithm 2) is the expensive, input-independent part of
// the OPQ-Based/OPQ-Extended solvers: it depends only on the bin profile and
// the reliability threshold, never on which atomic tasks are being assigned.
// A batch of crowdsourcing tasks drawn from the same platform therefore
// re-requests the same handful of (profile, threshold) keys over and over;
// this cache makes every repeat a map lookup instead of a DFS enumeration.
//
// The cache is capacity-bounded: a ResourceGovernor tracks estimated bytes
// (OptimalPriorityQueue::EstimatedBytes plus entry overhead) and entry
// counts globally, and least-recently-used entries are evicted while the
// cache is over an OpqCacheOptions limit. Entries live in N lock shards so
// solver threads looking up distinct keys do not serialize on one mutex;
// recency is a global monotonic tick stamped on every touch, and eviction
// approximates global LRU by comparing the tails of all shards and
// evicting the stalest -- locking one shard at a time, so eviction can
// never deadlock against lookups. OPQ entries are small and builds are
// expensive, so the scan cost is noise next to what a wrong eviction would
// waste. The entry just inserted or touched by the running lookup is never
// evicted by that same lookup (the working key stays served even when it
// alone exceeds the budget). Eviction never invalidates a queue a solver
// already holds: queues are handed out as shared_ptr<const ...>.

#ifndef SLADE_ENGINE_OPQ_CACHE_H_
#define SLADE_ENGINE_OPQ_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "binmodel/task_bin.h"
#include "common/result.h"
#include "engine/resource_governor.h"
#include "solver/opq_builder.h"

namespace slade {

/// \brief Capacity and sharding knobs of one OpqCache.
struct OpqCacheOptions {
  /// Evict LRU entries beyond this many estimated bytes (0 = unbounded).
  uint64_t max_bytes = 0;
  /// Evict LRU entries beyond this many entries (0 = unbounded).
  uint64_t max_entries = 0;
  /// Lock shards; floored at 1, clamped to max_entries when that is set.
  uint32_t num_shards = 8;
  /// Test hook: profile fingerprints are ANDed with this mask before
  /// keying, so a test can force distinct profiles onto one key and
  /// exercise the structural-equality collision guard deterministically.
  uint64_t fingerprint_mask = ~UINT64_C(0);
};

/// \brief Lifetime + occupancy counters, readable via stats().
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Lookups whose fingerprint matched an entry with a structurally
  /// different profile (each such lookup built a distinct chained entry).
  uint64_t collisions = 0;
  uint64_t entries = 0;     ///< current resident entries
  uint64_t bytes = 0;       ///< current charged bytes
  uint64_t peak_entries = 0;
  uint64_t peak_bytes = 0;

  /// Aggregate Algorithm 2 build cost paid by this cache's misses:
  /// number of enumerations run, their summed OpqBuildStats and wall time.
  /// Failed builds (e.g. node-budget exhaustion) are included -- their
  /// nodes were still visited and paid for.
  uint64_t builds = 0;
  OpqBuildStats build_stats;
  double build_seconds = 0.0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Thread-safe, capacity-bounded, sharded LRU memo of BuildOpq
/// results.
///
/// Keys are (masked profile fingerprint, threshold bit pattern); on a
/// fingerprint match the stored profile is compared structurally, so two
/// profiles colliding on the hash never share a queue -- the second gets
/// its own chained entry. Concurrent lookups of the same key build once;
/// the racers block on the entry and receive the shared queue. Queues are
/// handed out as shared_ptr<const ...>, so entries stay valid even if they
/// are evicted or the cache is cleared while a solve is in flight, and a
/// racer re-requesting an evicted key simply rebuilds a fresh entry.
class OpqCache {
 public:
  struct Lookup {
    std::shared_ptr<const OptimalPriorityQueue> queue;
    /// False iff this call ran the Algorithm 2 enumeration itself.
    bool hit = false;
  };

  explicit OpqCache(OpqCacheOptions options = {});
  OpqCache(const OpqCache&) = delete;
  OpqCache& operator=(const OpqCache&) = delete;

  /// Returns the memoized queue for (profile, threshold), building it on
  /// first use. A failed build is memoized too (same inputs would fail the
  /// same way) and its Status is returned to every caller of the key.
  ///
  /// `salt` is folded into the fingerprint half of the key and stored on
  /// the entry: callers serving many platforms pass a per-(platform,
  /// epoch) salt so structurally identical profiles from different
  /// platforms (or epochs of one platform) never share an entry, and
  /// EvictBySalt can drop exactly one platform-epoch's entries.
  Result<Lookup> GetOrBuild(const BinProfile& profile, double threshold,
                            const OpqBuildOptions& options = {},
                            uint64_t salt = 0);

  /// Number of distinct entries currently held (built or failed).
  size_t size() const;

  /// Cumulative lookup counters across the cache's lifetime (they survive
  /// Clear(); use ResetStats() to zero them).
  uint64_t hits() const;
  uint64_t misses() const;

  /// Full counter + occupancy snapshot.
  CacheStats stats() const;

  /// Drops all entries. Queues already handed out remain valid (shared
  /// ownership). Lifetime counters (hits/misses/evictions/collisions) are
  /// NOT touched -- a long-running server clearing its cache keeps honest
  /// cumulative stats.
  void Clear();

  /// Drops every entry inserted under `salt`, leaving all other entries
  /// (and their recency order) untouched. Returns the number of entries
  /// evicted. This is how an epoch promotion invalidates exactly the
  /// retired (platform, epoch)'s builds and nothing else; queues already
  /// handed out remain valid through their shared_ptr.
  size_t EvictBySalt(uint64_t salt);

  /// Zeroes the lifetime counters without touching the entries.
  void ResetStats();

  /// The governor charged for resident entries (capacity + peaks).
  const ResourceGovernor& governor() const { return governor_; }

  const OpqCacheOptions& options() const { return options_; }

  /// Structural fingerprint of a profile: hash over every bin's
  /// (cardinality, confidence, cost). Exposed for tests.
  static uint64_t ProfileFingerprint(const BinProfile& profile);

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (fingerprint, threshold bits)

  struct Entry {
    // Immutable after creation.
    std::vector<TaskBin> profile_bins;  ///< structural identity (collision guard)
    uint64_t salt = 0;  ///< caller-supplied namespace (platform epoch)

    // Guarded by build_mutex.
    std::mutex build_mutex;
    bool done = false;
    std::shared_ptr<const OptimalPriorityQueue> queue;  // null on failure
    Status error;

    // Guarded by the owning shard's mutex.
    bool resident = true;        ///< still linked into the shard
    uint64_t charged_bytes = 0;  ///< what eviction must release
    uint64_t last_used = 0;      ///< global tick of the latest touch
  };

  struct Node {
    Key key;
    std::shared_ptr<Entry> entry;
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Recency order, front = most recent. Eviction pops the back.
    std::list<Node> lru;
    /// Key -> chained entries (one per structurally distinct profile).
    std::map<Key, std::vector<std::list<Node>::iterator>> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t collisions = 0;
  };

  Shard& ShardOf(const Key& key);
  /// Unlinks the node at `it` from `shard`, releasing its governor charge
  /// and bumping the eviction counter. Requires shard.mutex held.
  void EvictNodeLocked(Shard* shard, std::list<Node>::iterator it);
  /// Evicts the globally stalest evictable entry (never `keep`); locks one
  /// shard at a time. Returns false when nothing but `keep` is left.
  bool EvictOneGlobal(const Entry* keep);
  /// Runs EvictOneGlobal until the governor is back under capacity (or
  /// nothing is evictable). Call without any shard lock held.
  void EnforceCapacity(const Entry* keep);
  /// Bytes charged for one resident entry once its build finished.
  static uint64_t EntryBytes(const Entry& entry);

  const OpqCacheOptions options_;
  ResourceGovernor governor_;
  std::atomic<uint64_t> tick_{0};
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Aggregate Algorithm 2 build cost (lifetime counters, like hit/miss:
  /// Clear() keeps them, ResetStats() zeroes them). Builds are rare and
  /// long next to a mutex acquisition, so one mutex is plenty.
  mutable std::mutex build_stats_mutex_;
  uint64_t builds_ = 0;
  OpqBuildStats build_stats_;
  double build_seconds_ = 0.0;
};

}  // namespace slade

#endif  // SLADE_ENGINE_OPQ_CACHE_H_
