// Copyright (c) the SLADE reproduction authors.
// Memoized optimal-priority-queue builds, keyed by (profile, threshold).
//
// Building an OPQ (Algorithm 2) is the expensive, input-independent part of
// the OPQ-Based/OPQ-Extended solvers: it depends only on the bin profile and
// the reliability threshold, never on which atomic tasks are being assigned.
// A batch of crowdsourcing tasks drawn from the same platform therefore
// re-requests the same handful of (profile, threshold) keys over and over;
// this cache makes every repeat a map lookup instead of a DFS enumeration.

#ifndef SLADE_ENGINE_OPQ_CACHE_H_
#define SLADE_ENGINE_OPQ_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/opq_builder.h"

namespace slade {

/// \brief Thread-safe memo of BuildOpq results.
///
/// Keys are (profile fingerprint, threshold bit pattern): two lookups share
/// an entry iff their profiles are structurally identical and their
/// thresholds are the exact same double. Concurrent lookups of the same key
/// build once; the racers block on the entry and receive the shared queue.
/// Queues are handed out as shared_ptr<const ...>, so entries stay valid
/// even if the cache is cleared while a solve is in flight.
class OpqCache {
 public:
  struct Lookup {
    std::shared_ptr<const OptimalPriorityQueue> queue;
    /// False iff this call ran the Algorithm 2 enumeration itself.
    bool hit = false;
  };

  OpqCache() = default;
  OpqCache(const OpqCache&) = delete;
  OpqCache& operator=(const OpqCache&) = delete;

  /// Returns the memoized queue for (profile, threshold), building it on
  /// first use. A failed build is memoized too (same inputs would fail the
  /// same way) and its Status is returned to every caller of the key.
  Result<Lookup> GetOrBuild(const BinProfile& profile, double threshold,
                            const OpqBuildOptions& options = {});

  /// Number of distinct keys currently held (built or failed).
  size_t size() const;

  /// Cumulative lookup counters across the cache's lifetime.
  uint64_t hits() const;
  uint64_t misses() const;

  /// Drops all entries and resets the counters. Queues already handed out
  /// remain valid (shared ownership).
  void Clear();

  /// Structural fingerprint of a profile: hash over every bin's
  /// (cardinality, confidence, cost). Exposed for tests.
  static uint64_t ProfileFingerprint(const BinProfile& profile);

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (fingerprint, threshold bits)

  struct Entry {
    std::mutex build_mutex;
    bool done = false;
    std::shared_ptr<const OptimalPriorityQueue> queue;  // null on failure
    Status error;
  };

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace slade

#endif  // SLADE_ENGINE_OPQ_CACHE_H_
