#include "engine/profile_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/math_util.h"

namespace slade {

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kCheapest:
      return "cheapest";
    case RoutingPolicy::kStickyRequester:
      return "sticky";
    case RoutingPolicy::kExplicit:
      return "explicit";
  }
  return "unknown";
}

Result<RoutingPolicy> ParseRoutingPolicy(const std::string& name) {
  if (name == "cheapest") return RoutingPolicy::kCheapest;
  if (name == "sticky") return RoutingPolicy::kStickyRequester;
  if (name == "explicit") return RoutingPolicy::kExplicit;
  return Status::InvalidArgument(
      "unknown routing policy '" + name +
      "' (expected cheapest, sticky or explicit)");
}

ProfileRegistry::ProfileRegistry(RecalibrationOptions recalibration)
    : recalibration_(recalibration) {}

uint64_t ProfileRegistry::SaltOf(const std::string& platform_id,
                                 uint64_t epoch) {
  uint64_t h = UINT64_C(0x51ade'ca11);
  for (char c : platform_id) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  h = HashCombine(h, epoch);
  // 0 is the "unsalted" sentinel of single-profile callers; remap the
  // (astronomically unlikely) collision so EvictBySalt(salt) can never
  // sweep unsalted entries.
  return h == 0 ? UINT64_C(1) : h;
}

double ProfileRegistry::EstimateCost(
    const BinProfile& profile, const std::vector<CrowdsourcingTask>& tasks) {
  const std::vector<double>& weights = profile.log_weights();
  const std::vector<double>& unit_costs = profile.costs_per_task();
  double total = 0.0;
  for (const CrowdsourcingTask& task : tasks) {
    for (double theta : task.thetas()) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < weights.size(); ++i) {
        const double copies = std::ceil(theta / weights[i] - kRelEps);
        const double cost = std::max(1.0, copies) * unit_costs[i];
        if (cost < best) best = cost;
      }
      total += best;
    }
  }
  return total;
}

PlatformSnapshot ProfileRegistry::SnapshotLocked(
    const std::string& platform_id, const PlatformState& state) const {
  PlatformSnapshot snapshot;
  snapshot.platform_id = platform_id;
  snapshot.epoch = state.epoch;
  snapshot.salt = state.salt;
  snapshot.profile = state.profile;
  return snapshot;
}

Result<uint64_t> ProfileRegistry::Register(const std::string& platform_id,
                                           BinProfile profile) {
  if (platform_id.empty()) {
    return Status::InvalidArgument("platform id must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  PlatformState& state = platforms_[platform_id];
  if (state.live) {
    return Status::AlreadyExists("platform '" + platform_id +
                                 "' is already registered");
  }
  // Epochs stay monotonic across retire/re-register: a revived platform
  // continues its epoch sequence, so salts of old epochs never come back.
  state.live = true;
  state.epoch += 1;
  state.salt = SaltOf(platform_id, state.epoch);
  state.profile = std::make_shared<const BinProfile>(std::move(profile));
  state.pending.clear();
  state.folded_since_attempt = 0;
  state.counters.platform_id = platform_id;
  state.counters.epoch = state.epoch;
  state.counters.live = true;
  return state.epoch;
}

Status ProfileRegistry::Retire(const std::string& platform_id) {
  uint64_t retired_salt = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = platforms_.find(platform_id);
    if (it == platforms_.end() || !it->second.live) {
      return Status::NotFound("platform '" + platform_id +
                              "' is not registered");
    }
    it->second.live = false;
    it->second.counters.live = false;
    it->second.pending.clear();
    it->second.folded_since_attempt = 0;
    retired_salt = it->second.salt;
  }
  NotifyEpochChange(platform_id, retired_salt, /*new_epoch=*/0);
  return Status::OK();
}

uint64_t ProfileRegistry::PromoteLocked(const std::string& platform_id,
                                        PlatformState* state,
                                        BinProfile profile) {
  const uint64_t retired_salt = state->salt;
  state->epoch += 1;
  state->salt = SaltOf(platform_id, state->epoch);
  state->profile = std::make_shared<const BinProfile>(std::move(profile));
  state->pending.clear();
  state->folded_since_attempt = 0;
  state->counters.epoch = state->epoch;
  state->counters.promotions += 1;
  return retired_salt;
}

Result<uint64_t> ProfileRegistry::Promote(const std::string& platform_id,
                                          BinProfile profile) {
  uint64_t retired_salt = 0;
  uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = platforms_.find(platform_id);
    if (it == platforms_.end() || !it->second.live) {
      return Status::NotFound("platform '" + platform_id +
                              "' is not registered");
    }
    retired_salt =
        PromoteLocked(platform_id, &it->second, std::move(profile));
    new_epoch = it->second.epoch;
  }
  NotifyEpochChange(platform_id, retired_salt, new_epoch);
  return new_epoch;
}

Result<PlatformSnapshot> ProfileRegistry::Current(
    const std::string& platform_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = platforms_.find(platform_id);
  if (it == platforms_.end() || !it->second.live) {
    return Status::NotFound("platform '" + platform_id +
                            "' is not registered");
  }
  return SnapshotLocked(platform_id, it->second);
}

std::vector<PlatformSnapshot> ProfileRegistry::LiveSnapshots() const {
  std::vector<PlatformSnapshot> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, state] : platforms_) {
    if (state.live) out.push_back(SnapshotLocked(id, state));
  }
  return out;
}

size_t ProfileRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [id, state] : platforms_) {
    if (state.live) ++n;
  }
  return n;
}

Result<PlatformSnapshot> ProfileRegistry::Route(
    const std::string& requester_id,
    const std::vector<CrowdsourcingTask>& tasks, RoutingPolicy policy,
    const std::string& platform_hint) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A named platform always wins: the HTTP `platform` field is an
  // explicit client instruction under every policy.
  if (!platform_hint.empty()) {
    auto it = platforms_.find(platform_hint);
    if (it == platforms_.end() || !it->second.live) {
      return Status::NotFound("platform '" + platform_hint +
                              "' is not registered");
    }
    return SnapshotLocked(platform_hint, it->second);
  }
  if (policy == RoutingPolicy::kExplicit) {
    return Status::InvalidArgument(
        "explicit routing requires a platform field on every submission");
  }
  if (policy == RoutingPolicy::kStickyRequester) {
    auto pin = sticky_.find(requester_id);
    if (pin != sticky_.end()) {
      auto it = platforms_.find(pin->second);
      if (it != platforms_.end() && it->second.live) {
        return SnapshotLocked(pin->second, it->second);
      }
      sticky_.erase(pin);  // pinned platform retired: re-route below
    }
  }
  // Cheapest live platform; map order makes the tie-break the smaller
  // platform id, so routing is deterministic.
  const PlatformState* best = nullptr;
  const std::string* best_id = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [id, state] : platforms_) {
    if (!state.live) continue;
    const double cost = EstimateCost(*state.profile, tasks);
    if (cost < best_cost) {
      best = &state;
      best_id = &id;
      best_cost = cost;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no live platforms registered");
  }
  if (policy == RoutingPolicy::kStickyRequester) {
    sticky_[requester_id] = *best_id;
  }
  return SnapshotLocked(*best_id, *best);
}

void ProfileRegistry::RecordRouted(const std::string& platform_id,
                                   uint64_t num_tasks,
                                   uint64_t num_atomic_tasks) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = platforms_.find(platform_id);
  if (it == platforms_.end()) return;
  it->second.counters.routed_submissions += 1;
  it->second.counters.routed_tasks += num_tasks;
  it->second.counters.routed_atomic_tasks += num_atomic_tasks;
}

void ProfileRegistry::RecordBilled(const std::string& platform_id,
                                   double cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = platforms_.find(platform_id);
  if (it == platforms_.end()) return;
  it->second.counters.billed_cost += cost;
}

Result<uint64_t> ProfileRegistry::FoldOutcomes(
    const std::string& platform_id,
    const std::vector<ProbeObservation>& outcomes) {
  uint64_t retired_salt = 0;
  uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = platforms_.find(platform_id);
    if (it == platforms_.end() || !it->second.live) {
      return Status::NotFound("platform '" + platform_id +
                              "' is not registered");
    }
    PlatformState& state = it->second;
    const uint32_t m = state.profile->max_cardinality();
    for (const ProbeObservation& obs : outcomes) {
      if (obs.cardinality == 0 || obs.cardinality > m || obs.total == 0) {
        continue;
      }
      ProbeObservation& slot = state.pending[obs.cardinality];
      slot.cardinality = obs.cardinality;
      slot.total += obs.total;
      slot.correct += obs.correct;
      state.folded_since_attempt += obs.total;
      state.counters.answers_folded += obs.total;
    }
    if (recalibration_.recalibrate_every == 0 ||
        state.folded_since_attempt < recalibration_.recalibrate_every) {
      return UINT64_C(0);
    }
    state.folded_since_attempt = 0;

    // Refit a candidate from everything accumulated since the last
    // promotion; bin costs carry over from the current epoch (streamed
    // answers score correctness, not prices).
    std::vector<ProbeObservation> probes;
    probes.reserve(state.pending.size());
    for (const auto& [l, obs] : state.pending) {
      ProbeObservation probe = obs;
      probe.bin_cost = state.profile->bin(l).cost;
      probes.push_back(probe);
    }
    Result<BinProfile> candidate =
        CalibrateProfile(probes, m, recalibration_.method);
    if (!candidate.ok()) {
      // Not enough signal yet (e.g. one distinct cardinality under
      // kCounting): keep accumulating and try again next window.
      return UINT64_C(0);
    }
    double delta = 0.0;
    for (uint32_t l = 1; l <= m; ++l) {
      delta = std::max(delta, std::fabs(candidate->bin(l).confidence -
                                        state.profile->bin(l).confidence));
    }
    state.counters.last_recalibration_delta = delta;
    if (delta <= recalibration_.drift_tolerance) return UINT64_C(0);
    retired_salt =
        PromoteLocked(platform_id, &state, std::move(*candidate));
    new_epoch = state.epoch;
  }
  NotifyEpochChange(platform_id, retired_salt, new_epoch);
  return new_epoch;
}

std::vector<PlatformStats> ProfileRegistry::stats() const {
  std::vector<PlatformStats> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(platforms_.size());
  for (const auto& [id, state] : platforms_) {
    out.push_back(state.counters);
  }
  return out;
}

uint64_t ProfileRegistry::AddEpochListener(EpochListener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = next_listener_id_++;
  listeners_[id] = std::move(listener);
  return id;
}

void ProfileRegistry::RemoveEpochListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.erase(id);
}

void ProfileRegistry::NotifyEpochChange(const std::string& platform_id,
                                        uint64_t retired_salt,
                                        uint64_t new_epoch) {
  std::vector<EpochListener> listeners;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listeners.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) listeners.push_back(fn);
  }
  for (const EpochListener& fn : listeners) {
    fn(platform_id, retired_salt, new_epoch);
  }
}

}  // namespace slade
