// Copyright (c) the SLADE reproduction authors.
// Multi-platform bin-profile registry with epoch-versioned routing and
// online recalibration.
//
// The paper plans against one fixed bin profile, but Section 3.1 frames
// calibration as an ongoing activity ("regularly issue testing task bins"):
// a real serving process faces many crowdsourcing platforms whose worker
// pools drift hour to hour. The registry is the layer between the
// calibration estimators (binmodel/calibration.h) and the serving engines:
//
//  * Platforms register and retire at runtime. Every registered profile is
//    versioned by a monotonically increasing *epoch*; (platform, epoch)
//    identifies one immutable BinProfile snapshot, handed out as a
//    shared_ptr so in-flight micro-batches keep solving against the epoch
//    they were admitted under even after a promotion.
//
//  * A cost-based router picks the serving platform per submission: the
//    cheapest platform by the per-atomic-task bound
//    min_l ceil(theta(t)/w_l) * c_l / l (the best single-bin rate of
//    meeting the task's log-domain threshold), a sticky per-requester
//    assignment, or an explicit platform named by the client.
//
//  * Streamed answer outcomes (ground-truth-scored per-cardinality counts,
//    e.g. from AnswerCollector on the closed-loop path) fold into a
//    candidate profile per platform. Every `recalibrate_every` folded
//    answers the candidate is refit with CalibrateProfile; when some
//    cardinality's confidence drifts beyond `drift_tolerance` the
//    candidate is *promoted* as a new epoch.
//
// Promotion must invalidate only the drifted platform's OpqCache entries,
// never the whole cache. Each (platform, epoch) carries a salt
// (SaltOf(platform, epoch)) that callers fold into OpqCache::GetOrBuild;
// epoch listeners receive the retired salt on every promotion/retire and
// evict exactly those entries (see StreamingEngine, which subscribes its
// engine's cache).
//
// Thread-safe: all methods may be called concurrently. Listeners are
// invoked outside the registry lock and must not call back into the
// registry.

#ifndef SLADE_ENGINE_PROFILE_REGISTRY_H_
#define SLADE_ENGINE_PROFILE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "binmodel/calibration.h"
#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"

namespace slade {

/// \brief How the router picks a serving platform for a submission.
enum class RoutingPolicy {
  /// Cheapest estimated cost to meet the submission's thresholds;
  /// deterministic platform-id tie-break. An explicit hint overrides.
  kCheapest,
  /// First routed platform is pinned per requester id and reused while it
  /// stays registered (retired pins re-route and re-pin cheapest). An
  /// explicit hint overrides without re-pinning.
  kStickyRequester,
  /// The submission must name its platform (HTTP `platform` field /
  /// Submit's platform_hint); routing fails without one.
  kExplicit,
};

const char* RoutingPolicyName(RoutingPolicy policy);
Result<RoutingPolicy> ParseRoutingPolicy(const std::string& name);

/// \brief Online recalibration knobs (per registry; applied per platform).
struct RecalibrationOptions {
  /// Attempt a refit every this many folded answers (0 = folding
  /// accumulates but never refits -- recalibration off).
  uint64_t recalibrate_every = 0;
  /// Promote a candidate only when some cardinality's confidence moved by
  /// more than this against the current epoch.
  double drift_tolerance = 0.02;
  /// Estimator for the candidate profile. kRegression (the default)
  /// tolerates partial cardinality coverage, which is what streamed
  /// outcomes provide; kCounting needs every cardinality observed.
  CalibrationMethod method = CalibrationMethod::kRegression;
};

/// \brief One platform's current serving profile, pinned by epoch.
struct PlatformSnapshot {
  std::string platform_id;
  uint64_t epoch = 0;
  /// Fold into OpqCache::GetOrBuild so this epoch's builds are
  /// individually evictable; equals SaltOf(platform_id, epoch).
  uint64_t salt = 0;
  std::shared_ptr<const BinProfile> profile;
};

/// \brief Per-platform routing/billing/recalibration counters.
struct PlatformStats {
  std::string platform_id;
  uint64_t epoch = 0;
  bool live = true;           ///< false once retired
  uint64_t promotions = 0;    ///< epochs beyond the registered one
  uint64_t routed_submissions = 0;
  uint64_t routed_tasks = 0;
  uint64_t routed_atomic_tasks = 0;
  double billed_cost = 0.0;   ///< sum of delivered slice costs
  uint64_t answers_folded = 0;
  /// Max per-cardinality |delta confidence| measured at the latest refit
  /// (whether or not it promoted); 0 before the first refit.
  double last_recalibration_delta = 0.0;
};

/// \brief Thread-safe registry of epoch-versioned platform profiles.
class ProfileRegistry {
 public:
  /// Notified after every epoch change, outside the registry lock:
  /// `retired_salt` keyed the builds that are now stale; `new_epoch` is 0
  /// when the platform was retired rather than promoted.
  using EpochListener = std::function<void(
      const std::string& platform_id, uint64_t retired_salt,
      uint64_t new_epoch)>;

  explicit ProfileRegistry(RecalibrationOptions recalibration = {});

  /// Registers a platform and returns its first epoch. Epochs are
  /// monotonic per platform across retire/re-register cycles (a revived
  /// platform never reuses an old epoch, so stale cache salts stay stale).
  /// Fails with AlreadyExists when the platform is currently registered.
  Result<uint64_t> Register(const std::string& platform_id,
                            BinProfile profile);

  /// Retires a platform: lookups and routing fail until re-registered.
  /// Listeners receive its salt (new_epoch = 0) so caches drop its builds.
  Status Retire(const std::string& platform_id);

  /// Replaces a live platform's profile as a new epoch (a manual
  /// promotion; the online loop calls this internally). Returns the new
  /// epoch; listeners receive the retired salt.
  Result<uint64_t> Promote(const std::string& platform_id,
                           BinProfile profile);

  /// The platform's current epoch snapshot; NotFound when absent or
  /// retired.
  Result<PlatformSnapshot> Current(const std::string& platform_id) const;

  /// Snapshots of every live platform, in platform-id order.
  std::vector<PlatformSnapshot> LiveSnapshots() const;
  size_t live_count() const;

  /// Picks the serving platform for one submission under `policy` (see
  /// RoutingPolicy). A non-empty `platform_hint` always wins -- it is the
  /// HTTP `platform` field -- and fails with NotFound when that platform
  /// is not live.
  Result<PlatformSnapshot> Route(const std::string& requester_id,
                                 const std::vector<CrowdsourcingTask>& tasks,
                                 RoutingPolicy policy,
                                 const std::string& platform_hint = {});

  /// Admission-side routing counters (call once per admitted submission).
  void RecordRouted(const std::string& platform_id, uint64_t num_tasks,
                    uint64_t num_atomic_tasks);
  /// Delivery-side billing counter (call once per delivered slice).
  void RecordBilled(const std::string& platform_id, double cost);

  /// Folds ground-truth-scored outcomes into the platform's candidate
  /// profile. Once `recalibrate_every` answers have accumulated since the
  /// last attempt, refits with CalibrateProfile and promotes a new epoch
  /// when the drift exceeds the tolerance (an unfittable candidate --
  /// e.g. too few distinct cardinalities -- skips the attempt and keeps
  /// accumulating). Returns the new epoch, or 0 when nothing promoted.
  Result<uint64_t> FoldOutcomes(
      const std::string& platform_id,
      const std::vector<ProbeObservation>& outcomes);

  /// Counters for every platform ever registered (retired ones included),
  /// in platform-id order.
  std::vector<PlatformStats> stats() const;

  uint64_t AddEpochListener(EpochListener listener);
  void RemoveEpochListener(uint64_t id);

  const RecalibrationOptions& recalibration() const { return recalibration_; }

  /// The cache salt of one (platform, epoch); never 0 for a valid epoch,
  /// so salted entries never collide with unsalted single-profile use.
  static uint64_t SaltOf(const std::string& platform_id, uint64_t epoch);

  /// The router's cost estimate: sum over atomic tasks of the best
  /// single-bin rate min_l ceil(theta(t)/w_l) * c_l / l. Exposed for the
  /// routing tests.
  static double EstimateCost(const BinProfile& profile,
                             const std::vector<CrowdsourcingTask>& tasks);

 private:
  struct PlatformState {
    bool live = false;
    uint64_t epoch = 0;
    uint64_t salt = 0;
    std::shared_ptr<const BinProfile> profile;
    /// Per-cardinality (correct, total) accumulated since the last
    /// promotion; bin costs come from the current profile at refit time.
    std::map<uint32_t, ProbeObservation> pending;
    uint64_t folded_since_attempt = 0;
    PlatformStats counters;
  };

  /// Installs `profile` as `state`'s next epoch. Requires mutex_ held;
  /// returns the retired salt for the caller to notify with.
  uint64_t PromoteLocked(const std::string& platform_id,
                         PlatformState* state, BinProfile profile);
  void NotifyEpochChange(const std::string& platform_id,
                         uint64_t retired_salt, uint64_t new_epoch);
  PlatformSnapshot SnapshotLocked(const std::string& platform_id,
                                  const PlatformState& state) const;

  const RecalibrationOptions recalibration_;

  mutable std::mutex mutex_;
  /// Every platform ever registered; retired ones keep their state so
  /// epochs stay monotonic and counters stay reportable.
  std::map<std::string, PlatformState> platforms_;
  /// kStickyRequester pins: requester id -> platform id.
  std::map<std::string, std::string> sticky_;
  std::map<uint64_t, EpochListener> listeners_;
  uint64_t next_listener_id_ = 1;
};

}  // namespace slade

#endif  // SLADE_ENGINE_PROFILE_REGISTRY_H_
