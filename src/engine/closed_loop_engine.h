// Copyright (c) the SLADE reproduction authors.
//
// Closed-loop platform serving: the full lifecycle the paper's SLADE model
// plans for, executed end to end. Requester workloads are admitted through
// StreamingEngine (micro-batching, OPQ cache, backpressure -- exactly the
// serving path of PRs 1-4); the resulting per-requester plans are
// dispatched to the simulated marketplace (engine/answer_collector.h over
// simulator/platform.h, optionally perturbed by a FaultInjector); worker
// answers stream back asynchronously and are aggregated by truth inference
// (inference/truth_inference.h) into per-task posteriors; and tasks whose
// posterior confidence falls short of their reliability threshold are
// *re-decomposed* -- a residual crowdsourcing task is built for exactly
// the missing reliability and resubmitted through the same admission path,
// backpressure included -- until every task is confident, the round budget
// runs out, or a retry budget trips.
//
// Residual thresholds. A task with threshold t whose current posterior
// says its inferred label is correct with probability c < t still needs
// enough fresh evidence r so that the combined failure probability
// (1-c)(1-r) drops below 1-t; in the paper's log domain (Equation 2) that
// is simply theta_res = theta(t) - theta(c). Tasks that never received an
// answer (dropped bins, backpressure-rejected submissions) carry their
// full threshold into the next round. This is the closed-loop analogue of
// the residual planning in adaptive/adaptive_decomposer.h, driven by
// inferred truth instead of recalibrated confidences, so it also repairs
// faults the bin profile cannot see (spammer bursts, churn, outages).
//
// Determinism: with dispatch_threads == 1 a run is a pure function of
// (workloads, profile, options) -- the differential tests pin the no-fault
// round-1 plans and billed costs to plain StreamingEngine output. With
// more dispatch threads, answer arrival order (and hence the platform's
// RNG interleaving) varies, as on a real marketplace.

#ifndef SLADE_ENGINE_CLOSED_LOOP_ENGINE_H_
#define SLADE_ENGINE_CLOSED_LOOP_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "engine/plan_splitter.h"
#include "engine/streaming_engine.h"
#include "inference/truth_inference.h"
#include "simulator/fault_injector.h"
#include "simulator/platform.h"

namespace slade {

/// \brief Truth-inference aggregator used between rounds.
enum class InferenceKind {
  kMajorityVote,
  kDawidSkene,
};

const char* InferenceKindName(InferenceKind kind);

/// \brief Knobs for the closed loop.
struct ClosedLoopOptions {
  /// Admission path: flush policy, sharing, queue bounds, backpressure and
  /// OPQ cache limits all apply unchanged. kIsolated (the default) keeps
  /// round-1 plans identical to standalone OPQ-Extended solves.
  StreamingOptions streaming;
  /// The simulated marketplace the plans execute on.
  PlatformConfig platform;
  /// Fault scenario; all-default injects nothing.
  FaultOptions faults;
  InferenceKind inference = InferenceKind::kDawidSkene;
  DawidSkeneOptions dawid_skene;
  /// Rounds >= 1. Round 1 executes the original workloads; each further
  /// round re-decomposes only the under-confident residue. 1 = the
  /// no-retry baseline.
  uint32_t max_rounds = 3;
  /// Marketplace parallelism for bin posting (1 = fully deterministic).
  uint32_t dispatch_threads = 1;
  /// Retry budgets; 0 = unbounded. The loop stops re-decomposing (and
  /// reports budget_stopped) when either trips:
  /// cap on total re-decomposed atomic tasks across all retry rounds...
  uint64_t max_redecomposed_atomic_tasks = 0;
  /// ...or cap on total billed cost as a multiple of round-1 billed cost.
  double retry_cost_multiple = 0.0;
  /// Floor for residual thresholds (keeps FromThresholds valid and retry
  /// plans non-trivial).
  double min_residual_threshold = 0.05;
  /// Posterior-confidence clamp for the residual computation: evidence
  /// beyond this is not trusted (theta(c) -> inf as c -> 1).
  double max_posterior_confidence = 0.98;
  /// Record every round's delivered RequesterPlan slices in the report
  /// (differential tests; costs memory on large runs).
  bool keep_round_plans = false;
};

/// \brief One requester's workload plus the ground truth that drives the
/// simulator (concatenated over `tasks` in order; the loop never reads it
/// for inference or re-decomposition, only for posting bins and scoring
/// the final accuracy).
struct ClosedLoopWorkload {
  std::string requester;
  std::vector<CrowdsourcingTask> tasks;
  std::vector<bool> ground_truth;

  size_t num_atomic_tasks() const {
    size_t n = 0;
    for (const CrowdsourcingTask& t : tasks) n += t.size();
    return n;
  }
};

/// \brief Per-round bookkeeping. Inference metrics are cumulative (the
/// aggregator always sees every answer collected so far); dispatch and
/// cost metrics are the round's own.
struct ClosedLoopRoundStats {
  uint32_t round = 1;
  /// Submissions admitted this round.
  uint64_t submissions = 0;
  /// Submissions backpressure failed (their tasks stay unanswered).
  uint64_t rejected_submissions = 0;
  /// Atomic tasks submitted this round.
  uint64_t atomic_tasks = 0;
  uint64_t bins_posted = 0;
  /// Posts abandoned after repeated outage verdicts.
  uint64_t dropped_bins = 0;
  uint64_t outage_retries = 0;
  uint64_t answers = 0;
  double billed_cost = 0.0;    ///< sum of delivered slice costs
  double platform_cost = 0.0;  ///< incentives actually paid this round
  /// Label accuracy over answered tasks vs ground truth (cumulative).
  double accuracy = 0.0;
  /// Mean posterior confidence max(p, 1-p) over all tasks (unanswered
  /// tasks sit at 0.5).
  double mean_posterior_confidence = 0.0;
  uint64_t under_confident_after = 0;
  uint64_t unanswered_after = 0;
  /// Workers the aggregator currently estimates below 60% accuracy.
  uint64_t suspected_spammers = 0;
  double dispatch_seconds = 0.0;
  double inference_seconds = 0.0;
};

/// \brief Outcome of a closed-loop run.
struct ClosedLoopReport {
  uint32_t rounds = 0;
  bool budget_stopped = false;
  /// Atomic tasks re-decomposed across rounds 2+ (a task re-decomposed
  /// twice counts twice).
  uint64_t redecomposed_atomic_tasks = 0;
  double billed_cost = 0.0;
  double platform_cost = 0.0;
  double final_accuracy = 0.0;
  uint64_t final_under_confident = 0;
  uint64_t total_answers = 0;
  uint64_t total_bins = 0;
  std::vector<ClosedLoopRoundStats> round_stats;
  /// Final snapshots of the serving and fault layers.
  StreamingStats streaming;
  FaultStats faults;
  /// Slices delivered per round (only when options.keep_round_plans);
  /// round_plans[r] holds round r+1's slices in submission order.
  std::vector<std::vector<RequesterPlan>> round_plans;

  /// Human-readable multi-line summary (totals + per-round table).
  std::string ToString() const;
};

/// \brief The closed-loop serving engine. Each Run() is self-contained:
/// it builds a fresh platform, fault schedule and streaming engine from
/// the options, so runs are independent and (with dispatch_threads == 1)
/// reproducible.
class ClosedLoopEngine {
 public:
  explicit ClosedLoopEngine(BinProfile profile,
                            ClosedLoopOptions options = {});

  /// Runs the loop over the workloads (one round-1 submission each).
  /// Fails on empty input, a workload whose ground truth does not match
  /// its tasks, or a non-transient serving error; backpressure rejections
  /// and fault-dropped bins are outcomes, not errors.
  Result<ClosedLoopReport> Run(
      const std::vector<ClosedLoopWorkload>& workloads);

  const ClosedLoopOptions& options() const { return options_; }

 private:
  const BinProfile profile_;
  const ClosedLoopOptions options_;
};

}  // namespace slade

#endif  // SLADE_ENGINE_CLOSED_LOOP_ENGINE_H_
