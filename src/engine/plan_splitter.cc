#include "engine/plan_splitter.h"

#include <cstdint>
#include <map>
#include <utility>

namespace slade {

namespace {

/// Shared core: `owner_of_task[k]` is the slice index owning input task `k`
/// (slice labels already fixed by the caller; empty slices are allowed).
///
/// Works directly on the merged plan's columns. Placements owned entirely
/// by one slice whose local ids are a constant shift of the global ids --
/// every placement under kIsolated, where an owner's atomic tasks are one
/// contiguous global range -- are coalesced into runs and copied with
/// ColumnarPlan::AppendRange (bulk column memcpy, no per-id work beyond
/// the ownership scan). Mixed placements fall back to per-owner buckets
/// whose scratch is reused across placements.
Result<std::vector<RequesterPlan>> SplitByOwner(
    const BatchReport& report, const BinProfile& profile,
    const std::vector<size_t>& owner_of_task,
    std::vector<RequesterPlan> slices) {
  const std::vector<size_t>& offsets = report.task_offsets;
  const size_t num_tasks = report.num_tasks();
  const size_t num_atomic = report.num_atomic_tasks();

  // Requester-local ids follow the global order restricted to each slice:
  // sweep the input tasks once, numbering each slice's atomic tasks 0..n-1
  // and recording the slice-local input-task offsets as we go.
  std::vector<uint32_t> owner_of_atomic(num_atomic, 0);
  std::vector<TaskId> local_of_global(num_atomic, 0);
  for (RequesterPlan& slice : slices) slice.task_offsets.assign(1, 0);
  for (size_t k = 0; k < num_tasks; ++k) {
    const size_t o = owner_of_task[k];
    RequesterPlan& slice = slices[o];
    TaskId next = static_cast<TaskId>(slice.task_offsets.back());
    for (size_t id = offsets[k]; id < offsets[k + 1]; ++id) {
      owner_of_atomic[id] = static_cast<uint32_t>(o);
      local_of_global[id] = next++;
    }
    slice.task_offsets.push_back(next);
  }

  const ColumnarPlan& plan = report.plan;
  const TaskId* ids = plan.task_ids();
  const size_t num_placements = plan.num_placements();

  // Active contiguous run of single-owner placements (at most one at a
  // time; flushed whenever the owner, the id shift, or contiguity breaks).
  size_t run_begin = num_placements;  // sentinel: no active run
  size_t run_owner = 0;
  int64_t run_delta = 0;
  auto flush_run = [&](size_t end) {
    if (run_begin == num_placements) return;
    slices[run_owner].plan.AppendRange(plan, run_begin, end - run_begin,
                                       run_delta);
    run_begin = num_placements;
  };

  std::vector<std::vector<TaskId>> buckets(slices.size());
  std::vector<size_t> touched;
  for (size_t pi = 0; pi < num_placements; ++pi) {
    const size_t begin = plan.placement_begin(pi);
    const size_t end = plan.placement_end(pi);
    if (begin == end) {
      // A task-less placement belongs to no slice (matching the bucket
      // path, which never touches an owner for it).
      flush_run(pi);
      continue;
    }

    // Ownership scan: bounds-check every id and detect the single-owner /
    // constant-shift case without touching the buckets.
    for (size_t k = begin; k < end; ++k) {
      if (ids[k] >= num_atomic) {
        return Status::InvalidArgument(
            "PlanSplitter: merged plan references atomic task " +
            std::to_string(ids[k]) + " outside the batch (" +
            std::to_string(num_atomic) + " atomic tasks)");
      }
    }
    const uint32_t first_owner = owner_of_atomic[ids[begin]];
    const int64_t delta = static_cast<int64_t>(local_of_global[ids[begin]]) -
                          static_cast<int64_t>(ids[begin]);
    bool shiftable = true;
    for (size_t k = begin; k < end && shiftable; ++k) {
      shiftable = owner_of_atomic[ids[k]] == first_owner &&
                  static_cast<int64_t>(local_of_global[ids[k]]) -
                          static_cast<int64_t>(ids[k]) ==
                      delta;
    }

    if (shiftable) {
      if (run_begin != num_placements &&
          (run_owner != first_owner || run_delta != delta)) {
        flush_run(pi);
      }
      if (run_begin == num_placements) {
        run_begin = pi;
        run_owner = first_owner;
        run_delta = delta;
      }
      continue;
    }

    // Mixed placement: bucket the local ids by owner; every owner receives
    // the placement with the full (cardinality, copies) -- the bins are
    // posted either way, so each atomic task keeps its exact reliability
    // contribution.
    flush_run(pi);
    touched.clear();
    for (size_t k = begin; k < end; ++k) {
      std::vector<TaskId>& bucket = buckets[owner_of_atomic[ids[k]]];
      if (bucket.empty()) touched.push_back(owner_of_atomic[ids[k]]);
      bucket.push_back(local_of_global[ids[k]]);
    }
    const uint32_t cardinality = plan.cardinalities()[pi];
    const uint32_t copies = plan.copies()[pi];
    for (size_t o : touched) {
      slices[o].plan.Add(cardinality, copies, buckets[o].data(),
                         buckets[o].size());
      buckets[o].clear();  // keeps capacity: no realloc next placement
    }
  }
  flush_run(num_placements);

  for (RequesterPlan& slice : slices) {
    slice.cost = slice.plan.TotalCost(profile);
    slice.bins_posted = slice.plan.TotalBinInstances();
  }
  return slices;
}

}  // namespace

Result<std::vector<RequesterPlan>> PlanSplitter::SplitBySpans(
    const BatchReport& report, const BinProfile& profile,
    const std::vector<RequesterSpan>& spans) {
  const size_t num_tasks = report.num_tasks();
  std::vector<size_t> owner_of_task(num_tasks, 0);
  std::vector<RequesterPlan> slices(spans.size());
  size_t next_task = 0;
  for (size_t s = 0; s < spans.size(); ++s) {
    const RequesterSpan& span = spans[s];
    if (span.first_task != next_task ||
        span.num_tasks > num_tasks - next_task) {
      return Status::InvalidArgument(
          "PlanSplitter: span " + std::to_string(s) + " covers tasks [" +
          std::to_string(span.first_task) + ", " +
          std::to_string(span.first_task + span.num_tasks) +
          ") but the batch expects the next span at task " +
          std::to_string(next_task) + " of " + std::to_string(num_tasks));
    }
    for (size_t k = 0; k < span.num_tasks; ++k) {
      owner_of_task[next_task + k] = s;
    }
    next_task += span.num_tasks;
    slices[s].requester_id = span.requester_id;
  }
  if (next_task != num_tasks) {
    return Status::InvalidArgument(
        "PlanSplitter: spans cover " + std::to_string(next_task) + " of " +
        std::to_string(num_tasks) + " input tasks");
  }
  return SplitByOwner(report, profile, owner_of_task, std::move(slices));
}

Result<std::vector<RequesterPlan>> PlanSplitter::SplitByRequester(
    const BatchReport& report, const BinProfile& profile,
    const std::vector<std::string>& requester_of_task) {
  const size_t num_tasks = report.num_tasks();
  if (requester_of_task.size() != num_tasks) {
    return Status::InvalidArgument(
        "PlanSplitter: " + std::to_string(requester_of_task.size()) +
        " requester labels for " + std::to_string(num_tasks) +
        " input tasks");
  }
  std::vector<size_t> owner_of_task(num_tasks, 0);
  std::vector<RequesterPlan> slices;
  std::map<std::string, size_t> slice_of_requester;
  for (size_t k = 0; k < num_tasks; ++k) {
    auto [it, inserted] =
        slice_of_requester.emplace(requester_of_task[k], slices.size());
    if (inserted) {
      slices.emplace_back();
      slices.back().requester_id = requester_of_task[k];
    }
    owner_of_task[k] = it->second;
  }
  return SplitByOwner(report, profile, owner_of_task, std::move(slices));
}

}  // namespace slade
