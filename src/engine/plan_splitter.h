// Copyright (c) the SLADE reproduction authors.
// Cutting a merged batch plan back into per-requester plans.
//
// DecompositionEngine answers a whole batch with one merged plan addressed
// by global atomic-task ids, and BatchReport records where each input task's
// ids start (task_offsets). A serving front end needs the reverse: each
// requester wants a plan over *their* tasks only, addressed in their own
// 0-based ids. PlanSplitter performs that cut. Every atomic task keeps its
// exact bin memberships (cardinality and copies are preserved placement by
// placement), so each slice meets the same reliability thresholds the
// merged plan met -- slices of a feasible plan are feasible.
//
// Under EngineOptions sharing == kIsolated no bin mixes input tasks, so the
// slices partition the merged plan and slice costs sum exactly to the batch
// cost. Under kPooled a bin may hold atomic tasks of several requesters;
// such a placement appears in every affected slice (each requester must
// still post the full bin to keep their reliability), so the sum of slice
// costs can exceed the batch cost -- the difference is the sharing discount
// the platform pockets.

#ifndef SLADE_ENGINE_PLAN_SPLITTER_H_
#define SLADE_ENGINE_PLAN_SPLITTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "binmodel/task_bin.h"
#include "common/result.h"
#include "engine/decomposition_engine.h"
#include "solver/plan.h"

namespace slade {

/// \brief One requester's slice of a merged batch plan.
struct RequesterPlan {
  std::string requester_id;
  /// The slice, addressed in requester-local atomic ids: 0-based, ordered
  /// as the requester's input tasks appeared in the batch. Columnar, like
  /// the merged plan it was cut from (see solver/plan_arena.h).
  ColumnarPlan plan;
  /// Requester-local input-task offsets (size = num input tasks + 1):
  /// the requester's input task `k` owns local ids
  /// [task_offsets[k], task_offsets[k+1]).
  std::vector<size_t> task_offsets;
  /// Standalone cost of posting exactly this slice's bins.
  double cost = 0.0;
  uint64_t bins_posted = 0;

  // --- streaming metadata, filled by StreamingEngine (0 otherwise) ---
  /// Ordinal of the micro-batch that answered this slice.
  uint64_t flush_id = 0;
  /// Admission-to-delivery wall time of the owning submission.
  double latency_seconds = 0.0;
  /// Idempotency id of the owning submission (client-supplied or
  /// engine-generated when durability is on; empty otherwise).
  std::string submission_id;
  /// True when this is the replayed outcome of an already-completed
  /// submission id: cost/bins_posted/flush_id/latency_seconds describe
  /// the original delivery and `plan` is empty (placements are not
  /// retained for replay — see durability/hooks.h).
  bool duplicate = false;
  /// Serving platform and profile epoch the slice was solved under
  /// (registry-routed serving only; empty/0 in single-profile mode and on
  /// duplicate replays, whose journal records predate the routing).
  std::string platform;
  uint64_t epoch = 0;

  size_t num_tasks() const {
    return task_offsets.empty() ? 0 : task_offsets.size() - 1;
  }
  size_t num_atomic_tasks() const {
    return task_offsets.empty() ? 0 : task_offsets.back();
  }
};

/// \brief A contiguous run of a batch's input tasks owned by one requester
/// (one Submit call in the streaming engine). `num_tasks` may be zero: an
/// admitted-but-empty requester yields an empty slice.
struct RequesterSpan {
  std::string requester_id;
  size_t first_task = 0;
  size_t num_tasks = 0;
};

/// \brief Splits merged BatchReports into per-requester plans.
class PlanSplitter {
 public:
  /// Cuts `report.plan` into one slice per span. The spans must tile the
  /// batch's input tasks exactly: in order, non-overlapping, covering
  /// [0, report.num_tasks()). Returns the slices in span order. Fails on a
  /// non-tiling span list or a plan referencing ids outside the batch.
  static Result<std::vector<RequesterPlan>> SplitBySpans(
      const BatchReport& report, const BinProfile& profile,
      const std::vector<RequesterSpan>& spans);

  /// Cuts `report.plan` into one slice per distinct requester label.
  /// `requester_of_task[k]` names the owner of input task `k`; ownership
  /// may interleave arbitrarily. Slices are returned in order of each
  /// requester's first appearance, and their content is independent of
  /// that order (only of which tasks each requester owns).
  static Result<std::vector<RequesterPlan>> SplitByRequester(
      const BatchReport& report, const BinProfile& profile,
      const std::vector<std::string>& requester_of_task);
};

}  // namespace slade

#endif  // SLADE_ENGINE_PLAN_SPLITTER_H_
