#include "engine/opq_cache.h"

#include <cstring>

#include "common/math_util.h"

namespace slade {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t OpqCache::ProfileFingerprint(const BinProfile& profile) {
  uint64_t h = UINT64_C(0x51ade);
  for (const TaskBin& bin : profile.bins()) {
    h = HashCombine(h, bin.cardinality);
    h = HashCombine(h, DoubleBits(bin.confidence));
    h = HashCombine(h, DoubleBits(bin.cost));
  }
  return h;
}

Result<OpqCache::Lookup> OpqCache::GetOrBuild(const BinProfile& profile,
                                              double threshold,
                                              const OpqBuildOptions& options) {
  const Key key{ProfileFingerprint(profile), DoubleBits(threshold)};

  std::shared_ptr<Entry> entry;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      it = entries_.emplace(key, std::make_shared<Entry>()).first;
      inserted = true;
      ++misses_;
    } else {
      ++hits_;
    }
    entry = it->second;
  }

  // The map lock is released before the (potentially long) build so other
  // keys proceed concurrently; racers on the same key serialize here.
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (!entry->done) {
    auto built = BuildOpq(profile, threshold, options);
    if (built.ok()) {
      entry->queue = std::make_shared<const OptimalPriorityQueue>(
          std::move(built).ValueOrDie());
    } else {
      entry->error = built.status();
    }
    entry->done = true;
  }
  if (!entry->error.ok()) return entry->error;
  return Lookup{entry->queue, /*hit=*/!inserted};
}

size_t OpqCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

uint64_t OpqCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t OpqCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void OpqCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace slade
