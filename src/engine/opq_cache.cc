#include "engine/opq_cache.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"
#include "common/stopwatch.h"

namespace slade {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Approximate bookkeeping cost of one entry beyond the queue itself:
/// the LRU list node, the index bucket slot and its share of the map node.
constexpr uint64_t kNodeOverheadBytes = 128;

bool SameProfile(const std::vector<TaskBin>& a, const BinProfile& b) {
  const std::vector<TaskBin>& bins = b.bins();
  if (a.size() != bins.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].cardinality != bins[i].cardinality ||
        a[i].confidence != bins[i].confidence || a[i].cost != bins[i].cost) {
      return false;
    }
  }
  return true;
}

OpqCacheOptions Sanitized(OpqCacheOptions options) {
  if (options.num_shards == 0) options.num_shards = 1;
  // More shards than entry slots buys nothing but eviction-scan work, so a
  // tiny cache collapses to fewer shards.
  if (options.max_entries != 0 &&
      static_cast<uint64_t>(options.num_shards) > options.max_entries) {
    options.num_shards = static_cast<uint32_t>(options.max_entries);
  }
  return options;
}

}  // namespace

uint64_t OpqCache::ProfileFingerprint(const BinProfile& profile) {
  uint64_t h = UINT64_C(0x51ade);
  for (const TaskBin& bin : profile.bins()) {
    h = HashCombine(h, bin.cardinality);
    h = HashCombine(h, DoubleBits(bin.confidence));
    h = HashCombine(h, DoubleBits(bin.cost));
  }
  return h;
}

OpqCache::OpqCache(OpqCacheOptions options)
    : options_(Sanitized(options)),
      governor_(options_.max_bytes, options_.max_entries) {
  shards_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

OpqCache::Shard& OpqCache::ShardOf(const Key& key) {
  return *shards_[HashCombine(key.first, key.second) % shards_.size()];
}

uint64_t OpqCache::EntryBytes(const Entry& entry) {
  uint64_t bytes = sizeof(Entry) + kNodeOverheadBytes +
                   entry.profile_bins.capacity() * sizeof(TaskBin);
  if (entry.queue != nullptr) bytes += entry.queue->EstimatedBytes();
  return bytes;
}

void OpqCache::EvictNodeLocked(Shard* shard, std::list<Node>::iterator it) {
  auto bucket_it = shard->index.find(it->key);
  if (bucket_it != shard->index.end()) {
    auto& chain = bucket_it->second;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const std::list<Node>::iterator& link) {
                                 return link->entry == it->entry;
                               }),
                chain.end());
    if (chain.empty()) shard->index.erase(bucket_it);
  }
  governor_.Release(it->entry->charged_bytes, 1);
  it->entry->resident = false;
  shard->lru.erase(it);
  shard->evictions += 1;
}

bool OpqCache::EvictOneGlobal(const Entry* keep) {
  // Pass 1: find the shard whose stalest evictable entry has the oldest
  // tick, holding one shard lock at a time. The answer can go slightly
  // stale by pass 2 -- an approximation, never a correctness issue.
  size_t best_shard = shards_.size();
  uint64_t best_tick = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    for (auto it = shards_[s]->lru.rbegin(); it != shards_[s]->lru.rend();
         ++it) {
      if (it->entry.get() == keep) continue;  // at most one keep to skip
      if (best_shard == shards_.size() || it->entry->last_used < best_tick) {
        best_shard = s;
        best_tick = it->entry->last_used;
      }
      break;  // only the stalest evictable entry of this shard competes
    }
  }
  if (best_shard == shards_.size()) return false;

  // Pass 2: evict that shard's current stalest evictable entry.
  Shard& shard = *shards_[best_shard];
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    if (it->entry.get() == keep) continue;
    EvictNodeLocked(&shard, std::prev(it.base()));
    return true;
  }
  return false;  // raced empty; the caller's loop re-checks capacity
}

void OpqCache::EnforceCapacity(const Entry* keep) {
  while (governor_.OverCapacity()) {
    if (!EvictOneGlobal(keep)) break;
  }
}

Result<OpqCache::Lookup> OpqCache::GetOrBuild(const BinProfile& profile,
                                              double threshold,
                                              const OpqBuildOptions& options,
                                              uint64_t salt) {
  // The salt is folded in before the mask so the fingerprint_mask test
  // hook can still force cross-salt collisions onto one key; the
  // structural guard below then disambiguates on (salt, bins).
  const uint64_t fingerprint =
      HashCombine(ProfileFingerprint(profile), salt) & options_.fingerprint_mask;
  const Key key{fingerprint, DoubleBits(threshold)};
  Shard& shard = ShardOf(key);

  std::shared_ptr<Entry> entry;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto& chain = shard.index[key];
    for (const auto& it : chain) {
      if (it->entry->salt == salt &&
          SameProfile(it->entry->profile_bins, profile)) {
        entry = it->entry;
        // Refresh recency: move the node to the LRU front.
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        entry->last_used = tick_.fetch_add(1) + 1;
        shard.hits += 1;
        break;
      }
    }
    if (entry == nullptr) {
      if (!chain.empty()) shard.collisions += 1;
      shard.misses += 1;
      entry = std::make_shared<Entry>();
      entry->profile_bins = profile.bins();
      entry->salt = salt;
      entry->last_used = tick_.fetch_add(1) + 1;
      shard.lru.push_front(Node{key, entry});
      chain.push_back(shard.lru.begin());
      inserted = true;
      // Charge the entry slot now; its bytes follow once the build
      // finishes.
      governor_.Charge(0, 1);
    }
  }
  if (inserted) EnforceCapacity(entry.get());

  // The shard lock is released before the (potentially long) build so other
  // keys proceed concurrently; racers on the same key serialize here.
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (!entry->done) {
    OpqBuildStats stats;
    Stopwatch build_watch;
    auto built = BuildOpq(profile, threshold, options, &stats);
    {
      std::lock_guard<std::mutex> stats_lock(build_stats_mutex_);
      builds_ += 1;
      build_stats_.Accumulate(stats);
      build_seconds_ += build_watch.ElapsedSeconds();
    }
    if (built.ok()) {
      entry->queue = std::make_shared<const OptimalPriorityQueue>(
          std::move(built).ValueOrDie());
    } else {
      entry->error = built.status();
    }
    entry->done = true;

    const uint64_t bytes = EntryBytes(*entry);
    bool charged = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (entry->resident) {
        // Not evicted while building: charge the real size. An entry
        // evicted mid-build is never charged -- it lives on only through
        // the queue shared_ptr its builder and racers hold.
        entry->charged_bytes = bytes;
        governor_.Charge(bytes, 0);
        charged = true;
      }
    }
    if (charged) EnforceCapacity(entry.get());
  }
  if (!entry->error.ok()) return entry->error;
  return Lookup{entry->queue, /*hit=*/!inserted};
}

size_t OpqCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

uint64_t OpqCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->hits;
  }
  return total;
}

uint64_t OpqCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->misses;
  }
  return total;
}

CacheStats OpqCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.collisions += shard->collisions;
    stats.entries += shard->lru.size();
  }
  const GovernorCounters counters = governor_.counters();
  stats.bytes = counters.bytes;
  stats.peak_bytes = counters.peak_bytes;
  stats.peak_entries = counters.peak_units;
  {
    std::lock_guard<std::mutex> lock(build_stats_mutex_);
    stats.builds = builds_;
    stats.build_stats = build_stats_;
    stats.build_seconds = build_seconds_;
  }
  return stats;
}

void OpqCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (Node& node : shard->lru) {
      governor_.Release(node.entry->charged_bytes, 1);
      node.entry->resident = false;
    }
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t OpqCache::EvictBySalt(uint64_t salt) {
  size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      auto next = std::next(it);
      if (it->entry->salt == salt) {
        EvictNodeLocked(shard.get(), it);
        evicted += 1;
      }
      it = next;
    }
  }
  return evicted;
}

void OpqCache::ResetStats() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->hits = 0;
    shard->misses = 0;
    shard->evictions = 0;
    shard->collisions = 0;
  }
  std::lock_guard<std::mutex> lock(build_stats_mutex_);
  builds_ = 0;
  build_stats_ = OpqBuildStats{};
  build_seconds_ = 0.0;
}

}  // namespace slade
