#include "engine/streaming_engine.h"

#include <algorithm>
#include <set>
#include <utility>

namespace slade {

namespace {

EngineOptions ToEngineOptions(const StreamingOptions& options) {
  EngineOptions engine_options;
  engine_options.num_threads = options.num_threads;
  engine_options.opq_node_budget = options.opq_node_budget;
  engine_options.sharing = options.sharing;
  engine_options.resources = options.resources;
  return engine_options;
}

/// Floors both flush caps at 1: a cap of 0 would make SizeTriggeredLocked
/// true on an empty pending queue and spin the worker forever, and "flush
/// at 0 pending" can only mean "flush each submission immediately" anyway.
/// The fairness quantum and default weight are floored at 1 for the same
/// liveness reason: a zero quantum would never grant credit.
StreamingOptions Sanitized(StreamingOptions options) {
  if (options.max_pending_atomic_tasks == 0) {
    options.max_pending_atomic_tasks = 1;
  }
  if (options.max_pending_submissions == 0) {
    options.max_pending_submissions = 1;
  }
  if (options.fairness.quantum_atomic_tasks == 0) {
    options.fairness.quantum_atomic_tasks = 1;
  }
  if (options.fairness.default_weight == 0) {
    options.fairness.default_weight = 1;
  }
  return options;
}

}  // namespace

StreamingEngine::StreamingEngine(BinProfile profile, StreamingOptions options)
    : options_(Sanitized(options)),
      profile_(std::move(profile)),
      engine_(ToEngineOptions(options_)),
      governor_(options_.resources.queue_max_bytes,
                options_.resources.queue_max_atomic_tasks),
      worker_(&StreamingEngine::WorkerLoop, this) {
  if (options_.registry != nullptr) {
    // Epoch promotions (and retires) invalidate exactly the retired
    // (platform, epoch)'s OPQ builds. In-flight batches are unaffected:
    // they hold their queues by shared_ptr and their profile snapshots by
    // admission-time pin.
    epoch_listener_id_ = options_.registry->AddEpochListener(
        [this](const std::string& /*platform_id*/, uint64_t retired_salt,
               uint64_t /*new_epoch*/) {
          engine_.mutable_cache().EvictBySalt(retired_salt);
        });
  }
}

StreamingEngine::~StreamingEngine() {
  // Unsubscribe before tearing anything down so a concurrent promotion
  // can no longer call into this engine's cache.
  if (options_.registry != nullptr && epoch_listener_id_ != 0) {
    options_.registry->RemoveEpochListener(epoch_listener_id_);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  admit_.notify_all();
  worker_.join();
}

std::future<Result<RequesterPlan>> StreamingEngine::Submit(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks,
    std::string submission_id, std::string platform_hint) {
  return SubmitWithPolicy(std::move(requester_id), std::move(tasks),
                          options_.resources.backpressure,
                          /*rejected=*/nullptr, std::move(submission_id),
                          std::move(platform_hint));
}

Result<std::future<Result<RequesterPlan>>> StreamingEngine::TrySubmit(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks,
    std::string submission_id, std::string platform_hint) {
  Status rejected;
  std::future<Result<RequesterPlan>> future =
      SubmitWithPolicy(std::move(requester_id), std::move(tasks),
                       BackpressurePolicy::kReject, &rejected,
                       std::move(submission_id), std::move(platform_hint));
  if (!rejected.ok()) return rejected;
  return future;
}

size_t StreamingEngine::ReplayRecovered(
    std::vector<RecoveredSubmission> recovered) {
  size_t admitted = 0;
  for (RecoveredSubmission& sub : recovered) {
    if (sub.tasks.empty()) continue;
    Status rejected;
    // kBlock regardless of the configured policy: recovered work was
    // durably admitted before the crash and must not be dropped by
    // backpressure now. The original client connection died with the
    // crash, so the future is discarded — the plan is still solved,
    // journaled and billed, and a retry of the id replays its outcome.
    std::future<Result<RequesterPlan>> future = SubmitWithPolicy(
        std::move(sub.requester), std::move(sub.tasks),
        BackpressurePolicy::kBlock, &rejected, std::move(sub.submission_id),
        /*platform_hint=*/{});
    (void)future;
    if (rejected.ok()) ++admitted;
  }
  return admitted;
}

uint64_t StreamingEngine::WeightOf(const std::string& tenant) const {
  const auto it = options_.fairness.weights.find(tenant);
  if (it == options_.fairness.weights.end() || it->second == 0) {
    return options_.fairness.default_weight;
  }
  return it->second;
}

bool StreamingEngine::AnyPendingLocked() const {
  return options_.fairness.enabled ? pending_count_ > 0 : !pending_.empty();
}

size_t StreamingEngine::PendingCountLocked() const {
  return options_.fairness.enabled ? pending_count_ : pending_.size();
}

bool StreamingEngine::HasRoomLocked(const Pending& pending) const {
  if (!AnyPendingLocked()) return true;
  return governor_.WouldFit(pending.bytes, pending.num_atomic);
}

std::chrono::steady_clock::time_point StreamingEngine::OldestAdmittedLocked()
    const {
  if (!options_.fairness.enabled) return pending_.front().admitted;
  // Per-tenant queues are FIFO, so the global oldest is among the fronts.
  const Pending* oldest = nullptr;
  for (const auto& [tenant, state] : tenants_) {
    if (state.queue.empty()) continue;
    if (oldest == nullptr || state.queue.front().seq < oldest->seq) {
      oldest = &state.queue.front();
    }
  }
  return oldest->admitted;
}

void StreamingEngine::EnqueueLocked(Pending pending) {
  governor_.Charge(pending.bytes, pending.num_atomic);
  stats_.submissions += 1;
  stats_.tasks += pending.tasks.size();
  stats_.atomic_tasks += pending.num_atomic;
  pending_atomic_ += pending.num_atomic;
  if (!options_.fairness.enabled) {
    pending_.push_back(std::move(pending));
    return;
  }
  TenantState& state = tenants_[pending.requester];
  state.counters.submissions += 1;
  state.counters.tasks += pending.tasks.size();
  state.counters.atomic_tasks += pending.num_atomic;
  state.pending_atomic += pending.num_atomic;
  state.pending_bytes += pending.bytes;
  pending_count_ += 1;
  if (!state.in_ring) {
    state.in_ring = true;
    ring_.push_back(pending.requester);
  }
  state.queue.push_back(std::move(pending));
}

StreamingEngine::Pending StreamingEngine::PopOldestLocked() {
  if (!options_.fairness.enabled) {
    Pending victim = std::move(pending_.front());
    pending_.pop_front();
    pending_atomic_ -= victim.num_atomic;
    governor_.Release(victim.bytes, victim.num_atomic);
    return victim;
  }
  TenantState* best = nullptr;
  for (auto& [tenant, state] : tenants_) {
    if (state.queue.empty()) continue;
    if (best == nullptr ||
        state.queue.front().seq < best->queue.front().seq) {
      best = &state;
    }
  }
  Pending victim = std::move(best->queue.front());
  best->queue.pop_front();
  best->pending_atomic -= victim.num_atomic;
  best->pending_bytes -= victim.bytes;
  best->counters.shed += 1;
  pending_count_ -= 1;
  pending_atomic_ -= victim.num_atomic;
  governor_.Release(victim.bytes, victim.num_atomic);
  return victim;
}

std::vector<StreamingEngine::Pending> StreamingEngine::AssembleBatchLocked() {
  std::vector<Pending> batch;
  if (!options_.fairness.enabled) {
    batch.reserve(pending_.size());
    for (Pending& p : pending_) {
      governor_.Release(p.bytes, p.num_atomic);
      batch.push_back(std::move(p));
    }
    pending_.clear();
    pending_atomic_ = 0;
    return batch;
  }

  // Deficit round-robin over the active tenant ring. Each visit earns
  // quantum * weight atomic tasks of credit; whole submissions are taken
  // FIFO while credit lasts. The flush caps bound one micro-batch (the
  // batch always takes at least one submission, so an oversized
  // submission still progresses); leftovers stay queued for the next
  // batch, which the worker starts immediately.
  const uint64_t quantum = options_.fairness.quantum_atomic_tasks;
  size_t batch_atomic = 0;
  bool full = false;
  while (!full && !ring_.empty()) {
    const std::string tenant = ring_.front();
    TenantState& state = tenants_[tenant];
    if (state.queue.empty()) {
      // Emptied by a shed or a previous visit: retire from the ring and
      // forfeit unspent credit (idle tenants must not hoard bursts).
      state.deficit = 0;
      state.in_ring = false;
      ring_.pop_front();
      continue;
    }
    state.deficit += quantum * WeightOf(tenant);
    while (!state.queue.empty() &&
           state.queue.front().num_atomic <= state.deficit) {
      const Pending& front = state.queue.front();
      if (!batch.empty() &&
          (batch.size() >= options_.max_pending_submissions ||
           batch_atomic + front.num_atomic >
               options_.max_pending_atomic_tasks)) {
        full = true;
        break;
      }
      Pending taken = std::move(state.queue.front());
      state.queue.pop_front();
      state.deficit -= taken.num_atomic;
      state.pending_atomic -= taken.num_atomic;
      state.pending_bytes -= taken.bytes;
      pending_count_ -= 1;
      pending_atomic_ -= taken.num_atomic;
      batch_atomic += taken.num_atomic;
      governor_.Release(taken.bytes, taken.num_atomic);
      batch.push_back(std::move(taken));
    }
    if (full) break;  // tenant keeps its credit and its ring-front spot
    if (state.queue.empty()) {
      state.deficit = 0;
      state.in_ring = false;
      ring_.pop_front();
    } else {
      // Credit exhausted for this round: rotate to the back of the ring.
      ring_.pop_front();
      ring_.push_back(tenant);
    }
  }
  return batch;
}

std::future<Result<RequesterPlan>> StreamingEngine::SubmitWithPolicy(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks,
    BackpressurePolicy policy, Status* rejected, std::string submission_id,
    std::string platform_hint) {
  std::promise<Result<RequesterPlan>> promise;
  std::future<Result<RequesterPlan>> future = promise.get_future();
  if (tasks.empty()) {
    promise.set_value(Status::InvalidArgument(
        "StreamingEngine::Submit: empty submission from requester '" +
        requester_id + "'"));
    return future;
  }

  // Registry mode: pick the serving platform now and pin its current
  // epoch. Everything after admission -- the batch solve, the cache key,
  // the billing echo -- uses this snapshot, so a promotion between
  // admission and flush never reroutes or re-plans admitted work.
  PlatformSnapshot routed;
  if (options_.registry != nullptr) {
    Result<PlatformSnapshot> route = options_.registry->Route(
        requester_id, tasks, options_.routing, platform_hint);
    if (!route.ok()) {
      if (rejected != nullptr) *rejected = route.status();
      promise.set_value(route.status());
      return future;
    }
    routed = std::move(*route);
  }

  DurabilityHooks* const hooks = options_.durability;
  if (hooks != nullptr && submission_id.empty()) {
    // Durability needs an id for every submission: outcome records pair
    // with their admit record by id.
    submission_id = hooks->GenerateSubmissionId();
  }
  if (!submission_id.empty()) {
    // Idempotency gate. Both checks run under the engine lock so they
    // order against the publish path (ProcessBatch publishes the outcome
    // to the journal *before* retiring the id from active_ids_): a
    // duplicate either still sees the id active, or sees its outcome.
    std::unique_lock<std::mutex> lock(mutex_);
    if (active_ids_.count(submission_id) != 0) {
      Status status = Status::AlreadyExists(
          "StreamingEngine: submission id '" + submission_id +
          "' is already in flight");
      lock.unlock();
      if (rejected != nullptr) *rejected = status;
      promise.set_value(std::move(status));
      return future;
    }
    SubmissionOutcome outcome;
    if (hooks != nullptr && hooks->LookupCompleted(submission_id, &outcome)) {
      stats_.duplicate_hits += 1;
      lock.unlock();
      // Replay the original outcome: same billing metadata, no re-solve.
      RequesterPlan replay;
      replay.requester_id = std::move(requester_id);
      replay.submission_id = std::move(submission_id);
      replay.duplicate = true;
      replay.cost = outcome.cost;
      replay.bins_posted = outcome.bins_posted;
      replay.flush_id = outcome.flush_id;
      replay.latency_seconds = outcome.latency_seconds;
      replay.task_offsets.reserve(tasks.size() + 1);
      size_t offset = 0;
      replay.task_offsets.push_back(0);
      for (const CrowdsourcingTask& t : tasks) {
        offset += t.size();
        replay.task_offsets.push_back(offset);
      }
      promise.set_value(std::move(replay));
      return future;
    }
    active_ids_.insert(submission_id);
  }
  if (hooks != nullptr) {
    // Journal the admission before it can enter the pending queue: once
    // this returns the submission is recoverable. Done outside the
    // engine lock — it blocks on the group-commit fsync. A backpressure
    // rejection below closes the id with a buffered reject record.
    const Status journaled =
        hooks->RecordAdmit(submission_id, requester_id, tasks);
    if (!journaled.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        active_ids_.erase(submission_id);
      }
      if (rejected != nullptr) *rejected = journaled;
      promise.set_value(journaled);
      return future;
    }
  }

  Pending pending;
  pending.requester = std::move(requester_id);
  pending.submission_id = std::move(submission_id);
  pending.platform = routed.platform_id;
  pending.epoch = routed.epoch;
  pending.salt = routed.salt;
  pending.profile = routed.profile;
  for (const CrowdsourcingTask& t : tasks) pending.num_atomic += t.size();
  pending.tasks = std::move(tasks);
  pending.bytes = sizeof(Pending) + pending.requester.capacity() +
                  pending.submission_id.capacity();
  for (const CrowdsourcingTask& t : pending.tasks) {
    pending.bytes += sizeof(CrowdsourcingTask) + t.size() * sizeof(double);
  }
  pending.admitted = std::chrono::steady_clock::now();
  pending.promise = std::move(promise);
  const uint64_t routed_tasks = pending.tasks.size();
  const uint64_t routed_atomic = pending.num_atomic;

  const FairnessOptions& fairness = options_.fairness;
  bool admitted = true;
  bool shutdown_refused = false;
  bool quota_refused = false;
  std::vector<Pending> shed;  // promises fulfilled after the lock drops
  {
    std::unique_lock<std::mutex> lock(mutex_);
    pending.seq = next_seq_++;
    if (fairness.enabled) {
      // The tenant quota is checked before (and independently of) the
      // global policy: over-quota submissions are always rejected, so a
      // greedy tenant can neither block the shared queue nor shed other
      // tenants' work to make room for its own. A tenant whose queue is
      // empty admits regardless (the per-tenant empty-queue rule).
      const auto it = tenants_.find(pending.requester);
      if (it != tenants_.end() && !it->second.queue.empty()) {
        TenantState& state = it->second;
        const bool over_atomic =
            fairness.tenant_max_pending_atomic_tasks > 0 &&
            state.pending_atomic + pending.num_atomic >
                fairness.tenant_max_pending_atomic_tasks;
        const bool over_bytes =
            fairness.tenant_max_pending_bytes > 0 &&
            state.pending_bytes + pending.bytes >
                fairness.tenant_max_pending_bytes;
        if (over_atomic || over_bytes) {
          state.counters.rejected_quota += 1;
          stats_.rejected_tenant_quota += 1;
          admitted = false;
          quota_refused = true;
          // Kick a flush anyway: draining is what shrinks the tenant's
          // pending load below its quota.
          flush_requested_ = true;
          wake_.notify_one();
        }
      }
    }
    if (admitted && !HasRoomLocked(pending)) {
      // The queue is full: kick a flush so the solver opens room as fast
      // as it can, then apply the policy.
      flush_requested_ = true;
      wake_.notify_one();
      switch (policy) {
        case BackpressurePolicy::kBlock:
          stats_.blocked += 1;
          // Re-kick the flush on every wake: a waiter that loses the
          // post-flush admission race to another submitter must ask for
          // the *next* flush too, or it would stall until the deadline.
          while (!shutdown_ && !HasRoomLocked(pending)) {
            flush_requested_ = true;
            wake_.notify_one();
            admit_.wait(lock);
          }
          if (shutdown_) {
            // Admitting now could race the exiting worker and leave the
            // future unfulfilled; fail it cleanly instead.
            stats_.rejected += 1;
            admitted = false;
            shutdown_refused = true;
          }
          break;
        case BackpressurePolicy::kReject:
          stats_.rejected += 1;
          admitted = false;
          break;
        case BackpressurePolicy::kShedOldest:
          // Evict pending submissions oldest-first until the newcomer
          // fits. If it is bigger than the whole cap, the queue empties
          // and the empty-queue rule admits it alone.
          while (!HasRoomLocked(pending) && AnyPendingLocked()) {
            stats_.shed += 1;
            shed.push_back(PopOldestLocked());
          }
          break;
      }
    }
    if (!admitted && !pending.submission_id.empty()) {
      active_ids_.erase(pending.submission_id);
    }
    for (const Pending& victim : shed) {
      if (!victim.submission_id.empty()) {
        active_ids_.erase(victim.submission_id);
      }
    }
    if (admitted) EnqueueLocked(std::move(pending));
  }
  if (admitted) {
    wake_.notify_one();
    if (options_.registry != nullptr) {
      options_.registry->RecordRouted(routed.platform_id, routed_tasks,
                                      routed_atomic);
    }
  }

  if (hooks != nullptr) {
    // Close journaled ids that will never complete. Buffered, not
    // synced: losing a reject record to a crash merely re-admits work
    // the client was told to retry — safe, since a rejection is never
    // billed and never dedupable.
    for (const Pending& victim : shed) {
      if (!victim.submission_id.empty()) {
        hooks->RecordReject(victim.submission_id);
      }
    }
    if (!admitted && !pending.submission_id.empty()) {
      hooks->RecordReject(pending.submission_id);
    }
  }

  for (Pending& victim : shed) {
    victim.promise.set_value(Status::ResourceExhausted(
        "StreamingEngine: submission from requester '" + victim.requester +
        "' shed by shed-oldest backpressure to admit newer work"));
  }
  if (!admitted) {
    Status status;
    if (shutdown_refused) {
      status = Status::ResourceExhausted(
          "StreamingEngine: engine shut down while submission "
          "was blocked on a full admission queue");
    } else if (quota_refused) {
      status = Status::ResourceExhausted(
          "StreamingEngine: tenant quota exceeded for requester '" +
          pending.requester + "' (" +
          std::to_string(fairness.tenant_max_pending_atomic_tasks) +
          " atomic tasks / " +
          std::to_string(fairness.tenant_max_pending_bytes) +
          " bytes pending cap)");
    } else {
      status = Status::ResourceExhausted(
          "StreamingEngine: admission queue full (" +
          std::to_string(governor_.max_units()) + " atomic tasks / " +
          std::to_string(governor_.max_bytes()) + " bytes cap)");
    }
    if (rejected != nullptr) *rejected = status;
    pending.promise.set_value(std::move(status));
  }
  return future;
}

void StreamingEngine::Flush() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!AnyPendingLocked()) return;
    flush_requested_ = true;
  }
  wake_.notify_one();
}

void StreamingEngine::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (AnyPendingLocked()) {
    flush_requested_ = true;
    wake_.notify_one();
  }
  drained_.wait(lock, [&] { return !AnyPendingLocked() && in_flight_ == 0; });
}

StreamingStats StreamingEngine::stats() const {
  StreamingStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
    stats.queue_submissions = PendingCountLocked();
    stats.queue_atomic_tasks = pending_atomic_;
  }
  const GovernorCounters counters = governor_.counters();
  stats.queue_bytes = counters.bytes;
  stats.peak_queue_atomic_tasks = counters.peak_units;
  stats.peak_queue_bytes = counters.peak_bytes;
  return stats;
}

std::vector<TenantStats> StreamingEngine::tenant_stats() const {
  std::vector<TenantStats> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(tenants_.size());
  for (const auto& [tenant, state] : tenants_) {
    TenantStats stats = state.counters;
    stats.tenant = tenant;
    stats.weight = WeightOf(tenant);
    stats.pending_submissions = state.queue.size();
    stats.pending_atomic_tasks = state.pending_atomic;
    stats.pending_bytes = state.pending_bytes;
    out.push_back(std::move(stats));
  }
  return out;
}

bool StreamingEngine::SizeTriggeredLocked() const {
  return PendingCountLocked() >= options_.max_pending_submissions ||
         pending_atomic_ >= options_.max_pending_atomic_tasks;
}

void StreamingEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool deadline_hit = false;
    while (!shutdown_ && !flush_requested_ && !SizeTriggeredLocked()) {
      if (!AnyPendingLocked()) {
        wake_.wait(lock);
      } else {
        const auto deadline =
            OldestAdmittedLocked() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options_.max_delay_seconds));
        if (wake_.wait_until(lock, deadline) == std::cv_status::timeout) {
          deadline_hit = true;
          break;
        }
      }
    }
    if (!AnyPendingLocked()) {
      flush_requested_ = false;
      if (shutdown_) return;
      continue;
    }

    FlushReason reason = FlushReason::kDrain;
    if (SizeTriggeredLocked()) {
      reason = FlushReason::kSize;
    } else if (deadline_hit && !flush_requested_ && !shutdown_) {
      reason = FlushReason::kDeadline;
    }
    flush_requested_ = false;
    std::vector<Pending> batch = AssembleBatchLocked();
    // A fairness batch is bounded by the flush caps, so work may remain;
    // keep the worker draining it without waiting for a new trigger.
    if (AnyPendingLocked()) flush_requested_ = true;
    const size_t batch_size = batch.size();
    in_flight_ += batch_size;
    // The queue just shrank: submitters blocked on backpressure may admit
    // (and refill it) while the solve below runs.
    admit_.notify_all();

    lock.unlock();
    ProcessBatch(std::move(batch), reason);
    lock.lock();

    in_flight_ -= batch_size;
    if (!AnyPendingLocked() && in_flight_ == 0) drained_.notify_all();
  }
}

void StreamingEngine::ProcessBatch(std::vector<Pending> batch,
                                   FlushReason reason) {
  // Partition the micro-batch by serving (platform, epoch). Without a
  // registry every submission lands in one group keyed by the engine's
  // fixed profile (salt 0) -- exactly the previous single-solve path. In
  // registry mode each group solves against its members' admission-epoch
  // snapshot, so submissions admitted before a promotion are planned
  // under the profile they were admitted with. Groups preserve admission
  // order, and members keep their admission order within a group.
  struct Group {
    const BinProfile* profile = nullptr;
    uint64_t salt = 0;
    std::vector<size_t> members;  ///< indices into `batch`
  };
  std::vector<Group> groups;
  if (options_.registry == nullptr) {
    Group group;
    group.profile = &profile_;
    group.members.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) group.members[i] = i;
    groups.push_back(std::move(group));
  } else {
    std::map<std::pair<std::string, uint64_t>, size_t> index;
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto key = std::make_pair(batch[i].platform, batch[i].epoch);
      auto it = index.find(key);
      if (it == index.end()) {
        it = index.emplace(key, groups.size()).first;
        Group group;
        group.profile = batch[i].profile.get();
        group.salt = batch[i].salt;
        groups.push_back(std::move(group));
      }
      groups[it->second].members.push_back(i);
    }
  }

  // Solve each group and scatter its slices back to the batch slots. A
  // failed group fails only its own members, with the status a direct
  // SolveBatch call would have returned.
  std::vector<RequesterPlan> slice_of(batch.size());
  std::vector<Status> status_of(batch.size());
  double solve_seconds = 0.0;
  double batch_cost_total = 0.0;   // engine cost across groups
  double slice_cost_total = 0.0;   // delivered slice costs across groups
  bool any_solved = false;
  for (const Group& group : groups) {
    std::vector<CrowdsourcingTask> tasks;
    std::vector<RequesterSpan> spans;
    spans.reserve(group.members.size());
    for (size_t i : group.members) {
      Pending& p = batch[i];
      RequesterSpan span;
      span.requester_id = p.requester;
      span.first_task = tasks.size();
      span.num_tasks = p.tasks.size();
      spans.push_back(std::move(span));
      for (CrowdsourcingTask& t : p.tasks) tasks.push_back(std::move(t));
    }

    Result<BatchReport> report =
        engine_.SolveBatch(tasks, *group.profile, group.salt);
    Result<std::vector<RequesterPlan>> slices =
        report.ok()
            ? PlanSplitter::SplitBySpans(*report, *group.profile, spans)
            : Result<std::vector<RequesterPlan>>(report.status());
    if (!slices.ok()) {
      for (size_t i : group.members) status_of[i] = slices.status();
      continue;
    }
    any_solved = true;
    solve_seconds += report->wall_seconds;
    batch_cost_total += report->total_cost;
    for (size_t k = 0; k < group.members.size(); ++k) {
      const size_t i = group.members[k];
      slice_of[i] = std::move((*slices)[k]);
      slice_of[i].platform = batch[i].platform;
      slice_of[i].epoch = batch[i].epoch;
      slice_cost_total += slice_of[i].cost;
    }
  }

  uint64_t flush_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_id = next_flush_id_++;
  }

  const auto now = std::chrono::steady_clock::now();
  DurabilityHooks* const hooks = options_.durability;
  if (hooks != nullptr) {
    // Journal every outcome of the micro-batch, then pay one durability
    // barrier before any future resolves: an acked outcome is always on
    // disk. SyncOutcomes also publishes the outcomes to the duplicate-id
    // map; the ids retire from active_ids_ under the stats lock below,
    // so a concurrent duplicate submit never falls between the two.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!status_of[i].ok()) {
        // A failed solve closes the id without an outcome: the client
        // sees the error and may retry the same id for a real solve.
        hooks->RecordReject(batch[i].submission_id);
        continue;
      }
      SubmissionOutcome outcome;
      const RequesterPlan& slice = slice_of[i];
      outcome.cost = slice.cost;
      outcome.bins_posted = slice.bins_posted;
      outcome.flush_id = flush_id;
      outcome.num_tasks = slice.num_tasks();
      outcome.num_atomic_tasks = batch[i].num_atomic;
      outcome.latency_seconds =
          std::chrono::duration<double>(now - batch[i].admitted).count();
      hooks->RecordComplete(batch[i].submission_id, outcome);
    }
    hooks->SyncOutcomes();
    hooks->Compact();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Pending& p : batch) {
      if (!p.submission_id.empty()) active_ids_.erase(p.submission_id);
    }
    stats_.flushes += 1;
    switch (reason) {
      case FlushReason::kSize:
        stats_.flushes_by_size += 1;
        break;
      case FlushReason::kDeadline:
        stats_.flushes_by_deadline += 1;
        break;
      case FlushReason::kDrain:
        stats_.flushes_by_drain += 1;
        break;
    }
    if (any_solved) {
      stats_.solve_seconds += solve_seconds;
      stats_.total_cost += batch_cost_total;
    }
    if (options_.fairness.enabled) {
      // Per-tenant delivery accounting. Billed = the tenant's slice
      // costs; platform = the batch cost apportioned by billed share
      // (equal to billed under kIsolated, smaller under kPooled).
      std::set<std::string> counted;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!status_of[i].ok()) continue;
        TenantState& state = tenants_[batch[i].requester];
        const double cost = slice_of[i].cost;
        state.counters.delivered += 1;
        state.counters.billed_cost += cost;
        state.counters.platform_cost +=
            slice_cost_total > 0.0
                ? batch_cost_total * (cost / slice_cost_total)
                : 0.0;
        // A tenant with several submissions in the batch still counts
        // this micro-batch once.
        if (counted.insert(batch[i].requester).second) {
          state.counters.flushes += 1;
        }
      }
    }
  }

  if (options_.registry != nullptr) {
    for (size_t i = 0; i < batch.size(); ++i) {
      if (status_of[i].ok() && !batch[i].platform.empty()) {
        options_.registry->RecordBilled(batch[i].platform, slice_of[i].cost);
      }
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    if (!status_of[i].ok()) {
      batch[i].promise.set_value(status_of[i]);
      continue;
    }
    RequesterPlan slice = std::move(slice_of[i]);
    slice.flush_id = flush_id;
    slice.submission_id = batch[i].submission_id;
    slice.latency_seconds =
        std::chrono::duration<double>(now - batch[i].admitted).count();
    batch[i].promise.set_value(std::move(slice));
  }
}

}  // namespace slade
