#include "engine/streaming_engine.h"

#include <utility>

namespace slade {

namespace {

EngineOptions ToEngineOptions(const StreamingOptions& options) {
  EngineOptions engine_options;
  engine_options.num_threads = options.num_threads;
  engine_options.opq_node_budget = options.opq_node_budget;
  engine_options.sharing = options.sharing;
  engine_options.resources = options.resources;
  return engine_options;
}

/// Floors both flush caps at 1: a cap of 0 would make SizeTriggeredLocked
/// true on an empty pending queue and spin the worker forever, and "flush
/// at 0 pending" can only mean "flush each submission immediately" anyway.
StreamingOptions Sanitized(StreamingOptions options) {
  if (options.max_pending_atomic_tasks == 0) {
    options.max_pending_atomic_tasks = 1;
  }
  if (options.max_pending_submissions == 0) {
    options.max_pending_submissions = 1;
  }
  return options;
}

}  // namespace

StreamingEngine::StreamingEngine(BinProfile profile, StreamingOptions options)
    : options_(Sanitized(options)),
      profile_(std::move(profile)),
      engine_(ToEngineOptions(options_)),
      governor_(options_.resources.queue_max_bytes,
                options_.resources.queue_max_atomic_tasks),
      worker_(&StreamingEngine::WorkerLoop, this) {}

StreamingEngine::~StreamingEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  admit_.notify_all();
  worker_.join();
}

std::future<Result<RequesterPlan>> StreamingEngine::Submit(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks) {
  return SubmitWithPolicy(std::move(requester_id), std::move(tasks),
                          options_.resources.backpressure,
                          /*rejected=*/nullptr);
}

Result<std::future<Result<RequesterPlan>>> StreamingEngine::TrySubmit(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks) {
  Status rejected;
  std::future<Result<RequesterPlan>> future =
      SubmitWithPolicy(std::move(requester_id), std::move(tasks),
                       BackpressurePolicy::kReject, &rejected);
  if (!rejected.ok()) return rejected;
  return future;
}

bool StreamingEngine::HasRoomLocked(const Pending& pending) const {
  if (pending_.empty()) return true;
  return governor_.WouldFit(pending.bytes, pending.num_atomic);
}

std::future<Result<RequesterPlan>> StreamingEngine::SubmitWithPolicy(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks,
    BackpressurePolicy policy, Status* rejected) {
  std::promise<Result<RequesterPlan>> promise;
  std::future<Result<RequesterPlan>> future = promise.get_future();
  if (tasks.empty()) {
    promise.set_value(Status::InvalidArgument(
        "StreamingEngine::Submit: empty submission from requester '" +
        requester_id + "'"));
    return future;
  }

  Pending pending;
  pending.requester = std::move(requester_id);
  for (const CrowdsourcingTask& t : tasks) pending.num_atomic += t.size();
  pending.tasks = std::move(tasks);
  pending.bytes = sizeof(Pending) + pending.requester.capacity();
  for (const CrowdsourcingTask& t : pending.tasks) {
    pending.bytes += sizeof(CrowdsourcingTask) + t.size() * sizeof(double);
  }
  pending.admitted = std::chrono::steady_clock::now();
  pending.promise = std::move(promise);

  bool admitted = true;
  bool shutdown_refused = false;
  std::vector<Pending> shed;  // promises fulfilled after the lock drops
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!HasRoomLocked(pending)) {
      // The queue is full: kick a flush so the solver opens room as fast
      // as it can, then apply the policy.
      flush_requested_ = true;
      wake_.notify_one();
      switch (policy) {
        case BackpressurePolicy::kBlock:
          stats_.blocked += 1;
          // Re-kick the flush on every wake: a waiter that loses the
          // post-flush admission race to another submitter must ask for
          // the *next* flush too, or it would stall until the deadline.
          while (!shutdown_ && !HasRoomLocked(pending)) {
            flush_requested_ = true;
            wake_.notify_one();
            admit_.wait(lock);
          }
          if (shutdown_) {
            // Admitting now could race the exiting worker and leave the
            // future unfulfilled; fail it cleanly instead.
            stats_.rejected += 1;
            admitted = false;
            shutdown_refused = true;
          }
          break;
        case BackpressurePolicy::kReject:
          stats_.rejected += 1;
          admitted = false;
          break;
        case BackpressurePolicy::kShedOldest:
          // Evict pending submissions oldest-first until the newcomer
          // fits. If it is bigger than the whole cap, the queue empties
          // and the empty-queue rule admits it alone.
          while (!HasRoomLocked(pending) && !pending_.empty()) {
            Pending victim = std::move(pending_.front());
            pending_.pop_front();
            pending_atomic_ -= victim.num_atomic;
            governor_.Release(victim.bytes, victim.num_atomic);
            stats_.shed += 1;
            shed.push_back(std::move(victim));
          }
          break;
      }
    }
    if (admitted) {
      governor_.Charge(pending.bytes, pending.num_atomic);
      stats_.submissions += 1;
      stats_.tasks += pending.tasks.size();
      stats_.atomic_tasks += pending.num_atomic;
      pending_atomic_ += pending.num_atomic;
      pending_.push_back(std::move(pending));
    }
  }
  if (admitted) wake_.notify_one();

  for (Pending& victim : shed) {
    victim.promise.set_value(Status::ResourceExhausted(
        "StreamingEngine: submission from requester '" + victim.requester +
        "' shed by shed-oldest backpressure to admit newer work"));
  }
  if (!admitted) {
    Status status =
        shutdown_refused
            ? Status::ResourceExhausted(
                  "StreamingEngine: engine shut down while submission "
                  "was blocked on a full admission queue")
            : Status::ResourceExhausted(
                  "StreamingEngine: admission queue full (" +
                  std::to_string(governor_.max_units()) +
                  " atomic tasks / " + std::to_string(governor_.max_bytes()) +
                  " bytes cap)");
    if (rejected != nullptr) *rejected = status;
    pending.promise.set_value(std::move(status));
  }
  return future;
}

void StreamingEngine::Flush() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) return;
    flush_requested_ = true;
  }
  wake_.notify_one();
}

void StreamingEngine::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!pending_.empty()) {
    flush_requested_ = true;
    wake_.notify_one();
  }
  drained_.wait(lock, [&] { return pending_.empty() && in_flight_ == 0; });
}

StreamingStats StreamingEngine::stats() const {
  StreamingStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
    stats.queue_submissions = pending_.size();
    stats.queue_atomic_tasks = pending_atomic_;
  }
  const GovernorCounters counters = governor_.counters();
  stats.queue_bytes = counters.bytes;
  stats.peak_queue_atomic_tasks = counters.peak_units;
  stats.peak_queue_bytes = counters.peak_bytes;
  return stats;
}

bool StreamingEngine::SizeTriggeredLocked() const {
  return pending_.size() >= options_.max_pending_submissions ||
         pending_atomic_ >= options_.max_pending_atomic_tasks;
}

void StreamingEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool deadline_hit = false;
    while (!shutdown_ && !flush_requested_ && !SizeTriggeredLocked()) {
      if (pending_.empty()) {
        wake_.wait(lock);
      } else {
        const auto deadline =
            pending_.front().admitted +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options_.max_delay_seconds));
        if (wake_.wait_until(lock, deadline) == std::cv_status::timeout) {
          deadline_hit = true;
          break;
        }
      }
    }
    if (pending_.empty()) {
      flush_requested_ = false;
      if (shutdown_) return;
      continue;
    }

    FlushReason reason = FlushReason::kDrain;
    if (SizeTriggeredLocked()) {
      reason = FlushReason::kSize;
    } else if (deadline_hit && !flush_requested_ && !shutdown_) {
      reason = FlushReason::kDeadline;
    }
    flush_requested_ = false;
    std::vector<Pending> batch;
    batch.reserve(pending_.size());
    for (Pending& p : pending_) {
      governor_.Release(p.bytes, p.num_atomic);
      batch.push_back(std::move(p));
    }
    pending_.clear();
    pending_atomic_ = 0;
    const size_t batch_size = batch.size();
    in_flight_ += batch_size;
    // The queue just emptied: submitters blocked on backpressure may admit
    // (and refill it) while the solve below runs.
    admit_.notify_all();

    lock.unlock();
    ProcessBatch(std::move(batch), reason);
    lock.lock();

    in_flight_ -= batch_size;
    if (pending_.empty() && in_flight_ == 0) drained_.notify_all();
  }
}

void StreamingEngine::ProcessBatch(std::vector<Pending> batch,
                                   FlushReason reason) {
  // Concatenate the micro-batch in admission order; each submission is one
  // contiguous requester span, so the merged plan splits right back.
  std::vector<CrowdsourcingTask> tasks;
  std::vector<RequesterSpan> spans;
  spans.reserve(batch.size());
  for (Pending& p : batch) {
    RequesterSpan span;
    span.requester_id = p.requester;
    span.first_task = tasks.size();
    span.num_tasks = p.tasks.size();
    spans.push_back(std::move(span));
    for (CrowdsourcingTask& t : p.tasks) tasks.push_back(std::move(t));
  }

  Result<BatchReport> report = engine_.SolveBatch(tasks, profile_);

  uint64_t flush_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_id = next_flush_id_++;
    stats_.flushes += 1;
    switch (reason) {
      case FlushReason::kSize:
        stats_.flushes_by_size += 1;
        break;
      case FlushReason::kDeadline:
        stats_.flushes_by_deadline += 1;
        break;
      case FlushReason::kDrain:
        stats_.flushes_by_drain += 1;
        break;
    }
    if (report.ok()) {
      stats_.solve_seconds += report->wall_seconds;
      stats_.total_cost += report->total_cost;
    }
  }

  Result<std::vector<RequesterPlan>> slices =
      report.ok() ? PlanSplitter::SplitBySpans(*report, profile_, spans)
                  : Result<std::vector<RequesterPlan>>(report.status());
  if (!slices.ok()) {
    // A failed micro-batch fails every submission in it, with the same
    // status a direct SolveBatch call would have returned.
    for (Pending& p : batch) p.promise.set_value(slices.status());
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    RequesterPlan slice = std::move((*slices)[i]);
    slice.flush_id = flush_id;
    slice.latency_seconds =
        std::chrono::duration<double>(now - batch[i].admitted).count();
    batch[i].promise.set_value(std::move(slice));
  }
}

}  // namespace slade
