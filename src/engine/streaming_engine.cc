#include "engine/streaming_engine.h"

#include <utility>

namespace slade {

namespace {

EngineOptions ToEngineOptions(const StreamingOptions& options) {
  EngineOptions engine_options;
  engine_options.num_threads = options.num_threads;
  engine_options.opq_node_budget = options.opq_node_budget;
  engine_options.sharing = options.sharing;
  return engine_options;
}

/// Floors both flush caps at 1: a cap of 0 would make SizeTriggeredLocked
/// true on an empty pending queue and spin the worker forever, and "flush
/// at 0 pending" can only mean "flush each submission immediately" anyway.
StreamingOptions Sanitized(StreamingOptions options) {
  if (options.max_pending_atomic_tasks == 0) {
    options.max_pending_atomic_tasks = 1;
  }
  if (options.max_pending_submissions == 0) {
    options.max_pending_submissions = 1;
  }
  return options;
}

}  // namespace

StreamingEngine::StreamingEngine(BinProfile profile, StreamingOptions options)
    : options_(Sanitized(options)),
      profile_(std::move(profile)),
      engine_(ToEngineOptions(options)),
      worker_(&StreamingEngine::WorkerLoop, this) {}

StreamingEngine::~StreamingEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  worker_.join();
}

std::future<Result<RequesterPlan>> StreamingEngine::Submit(
    std::string requester_id, std::vector<CrowdsourcingTask> tasks) {
  std::promise<Result<RequesterPlan>> promise;
  std::future<Result<RequesterPlan>> future = promise.get_future();
  if (tasks.empty()) {
    promise.set_value(Status::InvalidArgument(
        "StreamingEngine::Submit: empty submission from requester '" +
        requester_id + "'"));
    return future;
  }

  Pending pending;
  pending.requester = std::move(requester_id);
  for (const CrowdsourcingTask& t : tasks) pending.num_atomic += t.size();
  pending.tasks = std::move(tasks);
  pending.admitted = std::chrono::steady_clock::now();
  pending.promise = std::move(promise);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.submissions += 1;
    stats_.tasks += pending.tasks.size();
    stats_.atomic_tasks += pending.num_atomic;
    pending_atomic_ += pending.num_atomic;
    pending_.push_back(std::move(pending));
  }
  wake_.notify_one();
  return future;
}

void StreamingEngine::Flush() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty()) return;
    flush_requested_ = true;
  }
  wake_.notify_one();
}

void StreamingEngine::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!pending_.empty()) {
    flush_requested_ = true;
    wake_.notify_one();
  }
  drained_.wait(lock, [&] { return pending_.empty() && in_flight_ == 0; });
}

StreamingStats StreamingEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool StreamingEngine::SizeTriggeredLocked() const {
  return pending_.size() >= options_.max_pending_submissions ||
         pending_atomic_ >= options_.max_pending_atomic_tasks;
}

void StreamingEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool deadline_hit = false;
    while (!shutdown_ && !flush_requested_ && !SizeTriggeredLocked()) {
      if (pending_.empty()) {
        wake_.wait(lock);
      } else {
        const auto deadline =
            pending_.front().admitted +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options_.max_delay_seconds));
        if (wake_.wait_until(lock, deadline) == std::cv_status::timeout) {
          deadline_hit = true;
          break;
        }
      }
    }
    if (pending_.empty()) {
      flush_requested_ = false;
      if (shutdown_) return;
      continue;
    }

    FlushReason reason = FlushReason::kDrain;
    if (SizeTriggeredLocked()) {
      reason = FlushReason::kSize;
    } else if (deadline_hit && !flush_requested_ && !shutdown_) {
      reason = FlushReason::kDeadline;
    }
    flush_requested_ = false;
    std::vector<Pending> batch = std::move(pending_);
    pending_.clear();
    pending_atomic_ = 0;
    const size_t batch_size = batch.size();
    in_flight_ += batch_size;

    lock.unlock();
    ProcessBatch(std::move(batch), reason);
    lock.lock();

    in_flight_ -= batch_size;
    if (pending_.empty() && in_flight_ == 0) drained_.notify_all();
  }
}

void StreamingEngine::ProcessBatch(std::vector<Pending> batch,
                                   FlushReason reason) {
  // Concatenate the micro-batch in admission order; each submission is one
  // contiguous requester span, so the merged plan splits right back.
  std::vector<CrowdsourcingTask> tasks;
  std::vector<RequesterSpan> spans;
  spans.reserve(batch.size());
  for (Pending& p : batch) {
    RequesterSpan span;
    span.requester_id = p.requester;
    span.first_task = tasks.size();
    span.num_tasks = p.tasks.size();
    spans.push_back(std::move(span));
    for (CrowdsourcingTask& t : p.tasks) tasks.push_back(std::move(t));
  }

  Result<BatchReport> report = engine_.SolveBatch(tasks, profile_);

  uint64_t flush_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_id = next_flush_id_++;
    stats_.flushes += 1;
    switch (reason) {
      case FlushReason::kSize:
        stats_.flushes_by_size += 1;
        break;
      case FlushReason::kDeadline:
        stats_.flushes_by_deadline += 1;
        break;
      case FlushReason::kDrain:
        stats_.flushes_by_drain += 1;
        break;
    }
    if (report.ok()) {
      stats_.solve_seconds += report->wall_seconds;
      stats_.total_cost += report->total_cost;
    }
  }

  Result<std::vector<RequesterPlan>> slices =
      report.ok() ? PlanSplitter::SplitBySpans(*report, profile_, spans)
                  : Result<std::vector<RequesterPlan>>(report.status());
  if (!slices.ok()) {
    // A failed micro-batch fails every submission in it, with the same
    // status a direct SolveBatch call would have returned.
    for (Pending& p : batch) p.promise.set_value(slices.status());
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    RequesterPlan slice = std::move((*slices)[i]);
    slice.flush_id = flush_id;
    slice.latency_seconds =
        std::chrono::duration<double>(now - batch[i].admitted).count();
    batch[i].promise.set_value(std::move(slice));
  }
}

}  // namespace slade
