// Copyright (c) the SLADE reproduction authors.
// Shared resource accounting for the engine stack.
//
// Every bounded component in the serving path -- the OPQ cache's entries,
// the streaming engine's admission queue -- has the same accounting need:
// track how many bytes and how many units it currently holds, answer "does
// one more fit?" against configured capacities, and expose counters so
// operators can see pressure building before it turns into latency. The
// ResourceGovernor is that one component; OpqCache charges it per cached
// queue and StreamingEngine per pending submission, so both layers enforce
// and report their limits the same way.

#ifndef SLADE_ENGINE_RESOURCE_GOVERNOR_H_
#define SLADE_ENGINE_RESOURCE_GOVERNOR_H_

#include <cstdint>
#include <mutex>

namespace slade {

/// \brief What a full admission queue does to the next submission.
enum class BackpressurePolicy {
  /// Submit blocks until the queue has room (and kicks a flush so room
  /// appears as fast as the solver allows). Nothing is ever lost.
  kBlock,
  /// Submit fails the returned future immediately with ResourceExhausted.
  kReject,
  /// The oldest *pending* submission is evicted and its future failed with
  /// ResourceExhausted; the new submission takes its place.
  kShedOldest,
};

const char* BackpressurePolicyName(BackpressurePolicy policy);

/// \brief Capacity knobs threaded through EngineOptions / StreamingOptions
/// down to the governed components. Every limit of 0 means "unbounded",
/// which reproduces the pre-governor behavior exactly.
struct ResourceOptions {
  // --- OpqCache (engine + streaming layers) ---
  /// Evict least-recently-used cached queues beyond this many estimated
  /// bytes (see OptimalPriorityQueue::EstimatedBytes).
  uint64_t cache_max_bytes = 0;
  /// Evict least-recently-used cached queues beyond this many entries.
  uint64_t cache_max_entries = 0;
  /// Lock shards of the cache; floored at 1. More shards cut contention
  /// when many solver threads look up distinct keys at once.
  uint32_t cache_shards = 8;

  // --- Plan arenas (batch engine materialization / merge path) ---
  /// Ledger capacity for columnar plan arenas (see solver/plan_arena.h).
  /// Arenas charge unconditionally -- the limit is observational (peak
  /// tracking via GovernorCounters), not admission control; 0 = unbounded.
  uint64_t plan_arena_max_bytes = 0;

  // --- StreamingEngine admission queue ---
  /// Cap on atomic tasks queued ahead of the solver (pending, not yet
  /// flushed). A single submission larger than the cap is still admitted
  /// once the queue is otherwise empty, so no input deadlocks.
  uint64_t queue_max_atomic_tasks = 0;
  /// Cap on estimated bytes queued ahead of the solver.
  uint64_t queue_max_bytes = 0;
  /// What happens to a submission that does not fit.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
};

/// \brief Lifetime counters of one governor, readable via counters().
struct GovernorCounters {
  uint64_t bytes = 0;        ///< currently charged bytes
  uint64_t units = 0;        ///< currently charged units
  uint64_t peak_bytes = 0;   ///< high-water mark of bytes
  uint64_t peak_units = 0;   ///< high-water mark of units
  uint64_t admitted = 0;     ///< successful Charge/TryAdmit calls
  uint64_t denied = 0;       ///< TryAdmit calls that did not fit
};

/// \brief Thread-safe bytes/units ledger with capacities.
///
/// "Units" are whatever the owning component counts: cache entries for
/// OpqCache, atomic tasks for StreamingEngine admission. A capacity of 0
/// disables that dimension's limit.
class ResourceGovernor {
 public:
  ResourceGovernor(uint64_t max_bytes, uint64_t max_units)
      : max_bytes_(max_bytes), max_units_(max_units) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Charges iff the result stays within both capacities; returns whether
  /// it charged. The check-and-charge is atomic.
  bool TryAdmit(uint64_t bytes, uint64_t units);

  /// Charges unconditionally (the caller enforces capacity by other means,
  /// e.g. the cache charges first and then evicts back under the limit).
  void Charge(uint64_t bytes, uint64_t units);

  /// Returns a previous charge. Saturates at zero rather than underflowing
  /// so a double-release bug cannot corrupt every later admission check.
  void Release(uint64_t bytes, uint64_t units);

  /// True iff charging (bytes, units) on top of the current load would
  /// stay within both capacities. Read-only; the answer can go stale the
  /// moment the lock drops, so use TryAdmit when the charge must be atomic.
  bool WouldFit(uint64_t bytes, uint64_t units) const;

  /// True iff the current load exceeds either capacity.
  bool OverCapacity() const;

  uint64_t max_bytes() const { return max_bytes_; }
  uint64_t max_units() const { return max_units_; }

  GovernorCounters counters() const;

 private:
  bool FitsLocked(uint64_t bytes, uint64_t units) const;

  const uint64_t max_bytes_;  // 0 = unbounded
  const uint64_t max_units_;  // 0 = unbounded

  mutable std::mutex mutex_;
  GovernorCounters counters_;
};

}  // namespace slade

#endif  // SLADE_ENGINE_RESOURCE_GOVERNOR_H_
