#include "engine/resource_governor.h"

#include <algorithm>

namespace slade {

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kReject:
      return "reject";
    case BackpressurePolicy::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

bool ResourceGovernor::FitsLocked(uint64_t bytes, uint64_t units) const {
  if (max_bytes_ != 0 && counters_.bytes + bytes > max_bytes_) return false;
  if (max_units_ != 0 && counters_.units + units > max_units_) return false;
  return true;
}

bool ResourceGovernor::TryAdmit(uint64_t bytes, uint64_t units) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!FitsLocked(bytes, units)) {
    counters_.denied += 1;
    return false;
  }
  counters_.bytes += bytes;
  counters_.units += units;
  counters_.peak_bytes = std::max(counters_.peak_bytes, counters_.bytes);
  counters_.peak_units = std::max(counters_.peak_units, counters_.units);
  counters_.admitted += 1;
  return true;
}

void ResourceGovernor::Charge(uint64_t bytes, uint64_t units) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.bytes += bytes;
  counters_.units += units;
  counters_.peak_bytes = std::max(counters_.peak_bytes, counters_.bytes);
  counters_.peak_units = std::max(counters_.peak_units, counters_.units);
  counters_.admitted += 1;
}

void ResourceGovernor::Release(uint64_t bytes, uint64_t units) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.bytes = counters_.bytes >= bytes ? counters_.bytes - bytes : 0;
  counters_.units = counters_.units >= units ? counters_.units - units : 0;
}

bool ResourceGovernor::WouldFit(uint64_t bytes, uint64_t units) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return FitsLocked(bytes, units);
}

bool ResourceGovernor::OverCapacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return (max_bytes_ != 0 && counters_.bytes > max_bytes_) ||
         (max_units_ != 0 && counters_.units > max_units_);
}

GovernorCounters ResourceGovernor::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace slade
