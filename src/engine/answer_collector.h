// Copyright (c) the SLADE reproduction authors.
//
// The dispatch layer between decomposition plans and the simulated
// marketplace. A plan names bins; a platform answers posts. The
// SimulatedDispatcher turns each placement copy into one bin post on the
// (mutex-guarded) Platform -- routed through an optional FaultInjector
// whose verdict may perturb or transiently fail the post -- and streams
// the resulting worker answers into an AnswerCollector, translated to
// global atomic-task ids. Posting runs on a caller-supplied ThreadPool,
// so answers arrive asynchronously and out of order, as on a real
// marketplace; a round barrier is just pool.Wait().
//
// Outage handling: a post that hits an outage window is retried (each
// attempt advances the injector's schedule, so windows pass); a post that
// stays down for kMaxPostAttempts is dropped -- its would-be answers are
// simply never collected, and the closed-loop engine's truth inference
// sees the shortfall as low posterior confidence.

#ifndef SLADE_ENGINE_ANSWER_COLLECTOR_H_
#define SLADE_ENGINE_ANSWER_COLLECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "binmodel/calibration.h"
#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "inference/truth_inference.h"
#include "simulator/fault_injector.h"
#include "simulator/platform.h"
#include "solver/plan.h"
#include "solver/plan_arena.h"

namespace slade {

/// \brief Dispatch counters (one collector typically spans one round).
struct DispatchStats {
  uint64_t bins_posted = 0;
  uint64_t answers = 0;
  uint64_t overtime_bins = 0;
  /// Posts abandoned after kMaxPostAttempts consecutive outage verdicts.
  uint64_t dropped_bins = 0;
  /// Outage verdicts absorbed by retries (excludes the dropped posts'
  /// final attempts).
  uint64_t outage_retries = 0;
  /// Incentives actually paid for the posts this collector saw.
  double platform_cost = 0.0;
};

/// \brief Thread-safe sink for asynchronously arriving worker answers.
class AnswerCollector {
 public:
  /// Appends one bin's answers (already translated to global task ids).
  void Accept(std::vector<WorkerAnswer> answers, bool overtime, double cost);
  void CountDroppedBin();
  void CountOutageRetry();

  /// Folds one posted copy's scoring into the per-cardinality calibration
  /// tally: `correct` of `total` collected answers at `cardinality`
  /// matched the known ground truth. Fed by the dispatcher, which is the
  /// only layer that still knows both the serving cardinality and the
  /// truth (WorkerAnswer records neither).
  void CountCalibration(uint32_t cardinality, uint64_t correct,
                        uint64_t total, double bin_cost);

  /// Moves the per-cardinality tallies out as ProbeObservations (sorted by
  /// cardinality), ready for ProfileRegistry::FoldOutcomes or
  /// CalibrateProfile. The tallies reset; counters stay.
  std::vector<ProbeObservation> TakeCalibrationCounts();

  /// Moves the collected answers out (the collector keeps its counters).
  std::vector<WorkerAnswer> TakeAnswers();

  DispatchStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<WorkerAnswer> answers_;
  std::map<uint32_t, ProbeObservation> calibration_;
  DispatchStats stats_;
};

/// \brief Posts plans to the simulated marketplace.
///
/// The dispatcher serializes platform access internally (the simulator's
/// RNG is one stream); parallelism across pool threads models concurrent
/// HIT completion, not concurrent RNG use. With a 1-thread pool the whole
/// dispatch is deterministic in (platform seed, injector seed, plan).
class SimulatedDispatcher {
 public:
  /// `injector` may be null (no fault injection). All references must
  /// outlive the dispatcher.
  SimulatedDispatcher(Platform& platform, const BinProfile& profile,
                      ThreadPool& pool, FaultInjector* injector = nullptr);

  /// Give-up bound for a post stuck in outage verdicts.
  static constexpr int kMaxPostAttempts = 64;

  /// Enqueues every placement copy of `plan` for posting. Placement task
  /// ids are plan-local; `global_of_local[id]` translates them to the
  /// global atomic-task ids used by `ground_truth` (indexed globally) and
  /// by the collected answers. Returns immediately; answers land in
  /// `collector` as posts complete. Fails fast (before enqueueing) on a
  /// placement referencing an id outside the mapping.
  Status Dispatch(const DecompositionPlan& plan,
                  std::vector<TaskId> global_of_local,
                  const std::vector<bool>& ground_truth,
                  AnswerCollector* collector);

  /// Columnar variant: placements are read straight off the flat columns
  /// (the closed-loop hot path dispatches splitter slices without an AoS
  /// conversion). Same validation, same posting order.
  Status Dispatch(const ColumnarPlan& plan,
                  std::vector<TaskId> global_of_local,
                  const std::vector<bool>& ground_truth,
                  AnswerCollector* collector);

  /// Blocks until every enqueued post has completed or been dropped.
  void Wait() { pool_.Wait(); }

 private:
  void PostPlacementCopy(const BinPlacement& placement,
                         const std::vector<TaskId>& global_ids,
                         const std::vector<bool>& truth,
                         AnswerCollector* collector);

  Platform& platform_;
  const BinProfile& profile_;
  ThreadPool& pool_;
  FaultInjector* injector_;
  std::mutex platform_mutex_;
};

}  // namespace slade

#endif  // SLADE_ENGINE_ANSWER_COLLECTOR_H_
