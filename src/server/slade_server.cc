#include "server/slade_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "server/json.h"

namespace slade {

namespace {

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string ErrorBody(const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.Value(message);
  w.EndObject();
  return std::move(w).Take();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SladeServer::SladeServer(StreamingEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

SladeServer::~SladeServer() { Shutdown(); }

Status SladeServer::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("SladeServer::Start called twice");
  }
  // A peer that disconnects mid-response must not kill the process.
  signal(SIGPIPE, SIG_IGN);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address '" + options_.address +
                                   "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        "bind " + options_.address + ":" + std::to_string(options_.port) +
        ": " + strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::IOError("listen: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  if (pipe(wake_pipe_) != 0 || !SetNonBlocking(wake_pipe_[0]) ||
      !SetNonBlocking(wake_pipe_[1]) || !SetNonBlocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe/nonblock setup failed");
  }

  const size_t num_workers =
      options_.num_workers == 0 ? 1 : options_.num_workers;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back(&SladeServer::WorkerLoop, this);
  }
  loop_thread_ = std::thread(&SladeServer::EventLoop, this);
  return Status::OK();
}

void SladeServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (!started_.load() || stopping_.exchange(true)) {
    // Never started, or a previous Shutdown already ran: idempotent no-op
    // (the first caller joined everything below).
    return;
  }
  NotifyLoop();
  {
    // Notify under work_mutex_: a worker that just evaluated the wait
    // predicate (saw stopping_ == false) still holds the mutex until it
    // blocks, so this cannot slip between its check and its sleep.
    std::lock_guard<std::mutex> lock(work_mutex_);
    work_cv_.notify_all();
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (options_.journal != nullptr) {
    // Every worker has returned, so no submission futures are pending on
    // HTTP requests; drain whatever else was fed in (e.g. a replay feed),
    // then seal the journal so a restart on this WAL skips recovery.
    engine_->Drain();
    options_.journal->WriteCheckpoint();
    options_.journal->Compact();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

ServerStats SladeServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SladeServer::NotifyLoop() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &byte, 1);
}

void SladeServer::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn_ids;
  for (;;) {
    const bool stopping = stopping_.load();
    // On shutdown: stop accepting, but keep serving until every busy
    // connection has its response written out.
    bool any_busy_or_unwritten = false;
    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fd_conn_ids.push_back(0);
    if (!stopping) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn_ids.push_back(0);
    }
    for (auto& [conn_id, conn] : connections_) {
      short events = 0;
      if (!conn.outbox.empty()) {
        events |= POLLOUT;
      } else if (!conn.busy) {
        // Read only when idle and nothing queued to write: one request in
        // flight per connection, and TCP backpressure otherwise.
        events |= POLLIN;
      }
      if (conn.busy || !conn.outbox.empty()) any_busy_or_unwritten = true;
      fds.push_back({conn.fd, events, 0});
      fd_conn_ids.push_back(conn_id);
    }
    if (stopping && !any_busy_or_unwritten) break;

    const int ready = poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    // Attach finished responses before touching sockets, so the write
    // pass below can flush them in the same iteration.
    {
      std::lock_guard<std::mutex> lock(finished_mutex_);
      for (Finished& done : finished_) {
        const auto it = connections_.find(done.conn_id);
        if (it == connections_.end()) continue;  // peer already gone
        it->second.busy = false;
        it->second.outbox += done.response;
        it->second.close_after_write |= done.close_after_write;
      }
      finished_.clear();
    }

    for (size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].fd == listen_fd_ && fd_conn_ids[i] == 0) {
        if (fds[i].revents & POLLIN) AcceptPending();
        continue;
      }
      const uint64_t conn_id = fd_conn_ids[i];
      const auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (conn->busy) {
          // The worker still owns a request for this connection; keep the
          // shell so its response has somewhere to land, drop it then.
          conn->close_after_write = true;
          continue;
        }
        CloseConnection(conn_id);
        continue;
      }
      if ((fds[i].revents & POLLIN) && !ReadAndDispatch(conn_id, conn)) {
        CloseConnection(conn_id);
        continue;
      }
    }

    // Flush every outbox with pending bytes (not only POLLOUT-flagged
    // ones: responses attached above may not have been polled for yet).
    std::vector<uint64_t> to_close;
    for (auto& [conn_id, conn] : connections_) {
      if (conn.outbox.empty()) continue;
      if (!WriteOut(&conn)) {
        to_close.push_back(conn_id);
        continue;
      }
      if (conn.outbox.empty() && conn.close_after_write) {
        to_close.push_back(conn_id);
      } else if (conn.outbox.empty() && !conn.busy &&
                 conn.parser.state() != HttpParseState::kNeedMore) {
        // A pipelined request (or a parse error on pipelined bytes)
        // resolved while the previous response was in flight; handle it
        // now -- no more bytes may ever arrive to trigger POLLIN. A dead
        // connection is deferred to to_close: erasing here would
        // invalidate this range-for's iterator.
        if (!ReadAndDispatch(conn_id, &conn)) to_close.push_back(conn_id);
      }
    }
    for (const uint64_t conn_id : to_close) CloseConnection(conn_id);
  }

  // Loop exit: fail any connections still open (none busy by now).
  std::vector<uint64_t> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [conn_id, conn] : connections_) {
    remaining.push_back(conn_id);
  }
  for (const uint64_t conn_id : remaining) CloseConnection(conn_id);
}

void SladeServer::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: try next poll
    if (connections_.size() >= options_.max_connections) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.connections_refused += 1;
      }
      // Refuse politely: a one-line 503, then close.
      const std::string refusal = RenderResponse(
          503, ErrorBody("connection limit reached"), true, "");
      [[maybe_unused]] const ssize_t n =
          write(fd, refusal.data(), refusal.size());
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t conn_id = next_conn_id_++;
    auto [it, inserted] =
        connections_.emplace(conn_id, Connection(options_.parser_limits));
    it->second.fd = fd;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.connections_accepted += 1;
  }
}

bool SladeServer::ReadAndDispatch(uint64_t conn_id, Connection* conn) {
  // Dispatch a request that completed earlier (pipelining) before
  // reading more bytes.
  if (conn->parser.state() != HttpParseState::kComplete) {
    char buf[16384];
    for (;;) {
      const ssize_t n = read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.bytes_in += static_cast<uint64_t>(n);
        }
        conn->parser.Feed(buf, static_cast<size_t>(n));
        if (conn->parser.state() != HttpParseState::kNeedMore) break;
        continue;
      }
      if (n == 0) {
        // Peer closed. Anything half-parsed is abandoned.
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
  }

  switch (conn->parser.state()) {
    case HttpParseState::kNeedMore:
      return true;
    case HttpParseState::kError: {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.parse_errors += 1;
        if (conn->parser.error_code() >= 500) {
          stats_.responses_5xx += 1;
        } else {
          stats_.responses_4xx += 1;
        }
      }
      // A parse error poisons the byte stream: respond and close.
      conn->outbox += RenderResponse(conn->parser.error_code(),
                                     ErrorBody(conn->parser.error_message()),
                                     true, "");
      conn->close_after_write = true;
      return true;
    }
    case HttpParseState::kComplete: {
      WorkItem item;
      item.conn_id = conn_id;
      item.request = conn->parser.ConsumeRequest(nullptr);
      conn->busy = true;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.requests += 1;
      }
      {
        std::lock_guard<std::mutex> lock(work_mutex_);
        work_queue_.push_back(std::move(item));
      }
      work_cv_.notify_one();
      return true;
    }
  }
  return true;
}

bool SladeServer::WriteOut(Connection* conn) {
  while (conn->out_offset < conn->outbox.size()) {
    const ssize_t n =
        write(conn->fd, conn->outbox.data() + conn->out_offset,
              conn->outbox.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_out += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  conn->outbox.clear();
  conn->out_offset = 0;
  return true;
}

void SladeServer::CloseConnection(uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  close(it->second.fd);
  connections_.erase(it);
}

void SladeServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_.load() || !work_queue_.empty();
      });
      if (work_queue_.empty()) return;  // stopping and drained
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    Finished done;
    done.conn_id = item.conn_id;
    bool close_connection = !item.request.keep_alive();
    done.response = Handle(item.request, &close_connection);
    done.close_after_write = close_connection;
    {
      std::lock_guard<std::mutex> lock(finished_mutex_);
      finished_.push_back(std::move(done));
    }
    NotifyLoop();
  }
}

std::string SladeServer::RenderResponse(int status_code,
                                        const std::string& body,
                                        bool close_connection,
                                        const std::string& extra_headers,
                                        bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    ReasonPhrase(status_code) + "\r\n";
  out += "Content-Type: application/json\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  if (close_connection) out += "Connection: close\r\n";
  out += "\r\n";
  if (!head_only) out += body;
  return out;
}

std::string SladeServer::Handle(const HttpRequest& request,
                                bool* close_connection) {
  int status_code = 200;
  std::string body;
  std::string extra_headers;

  if (request.target == "/healthz") {
    if (request.method == "GET" || request.method == "HEAD") {
      JsonWriter w;
      w.BeginObject();
      w.Key("status");
      w.Value("ok");
      w.EndObject();
      body = std::move(w).Take();
    } else {
      status_code = 405;
      body = ErrorBody("use GET /healthz");
    }
  } else if (request.target == "/v1/stats") {
    if (request.method == "GET") {
      body = HandleStats();
    } else {
      status_code = 405;
      body = ErrorBody("use GET /v1/stats");
    }
  } else if (request.target == "/v1/submit") {
    if (request.method == "POST") {
      body = HandleSubmit(request, &status_code);
      if (status_code == 429) {
        extra_headers = "Retry-After: " +
                        std::to_string(options_.retry_after_seconds) + "\r\n";
      }
    } else {
      status_code = 405;
      body = ErrorBody("use POST /v1/submit");
    }
  } else {
    status_code = 404;
    body = ErrorBody("no route for '" + request.target + "'");
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (status_code < 300) {
      stats_.responses_2xx += 1;
    } else if (status_code < 500) {
      stats_.responses_4xx += 1;
    } else {
      stats_.responses_5xx += 1;
    }
    if (status_code == 429) stats_.rejected_429 += 1;
  }
  if (status_code >= 400 && status_code != 404 && status_code != 405 &&
      status_code != 409 && status_code != 429) {
    // Hard protocol-ish failures close; soft rejections keep the
    // connection for a retry.
    *close_connection = true;
  }
  // HEAD responses must not carry a body (only /healthz accepts HEAD,
  // but 405s and 404s on HEAD requests must obey this too).
  return RenderResponse(status_code, body, *close_connection, extra_headers,
                        /*head_only=*/request.method == "HEAD");
}

std::string SladeServer::HandleSubmit(const HttpRequest& request,
                                      int* status_code) {
  Result<JsonValue> doc = JsonValue::Parse(request.body);
  if (!doc.ok()) {
    *status_code = 400;
    return ErrorBody("invalid JSON: " + doc.status().message());
  }
  const JsonValue* requester = doc->Find("requester");
  const JsonValue* tasks_json = doc->Find("tasks");
  if (requester == nullptr || !requester->is_string() ||
      requester->string.empty()) {
    *status_code = 400;
    return ErrorBody("'requester' must be a non-empty string");
  }
  if (tasks_json == nullptr || !tasks_json->is_array() ||
      tasks_json->items.empty()) {
    *status_code = 400;
    return ErrorBody("'tasks' must be a non-empty array of threshold arrays");
  }
  std::string submission_id;
  if (const JsonValue* id_json = doc->Find("submission_id")) {
    if (!id_json->is_string() || id_json->string.empty()) {
      *status_code = 400;
      return ErrorBody("'submission_id' must be a non-empty string");
    }
    submission_id = id_json->string;
  }
  std::string platform_hint;
  if (const JsonValue* platform_json = doc->Find("platform")) {
    if (!platform_json->is_string() || platform_json->string.empty()) {
      *status_code = 400;
      return ErrorBody("'platform' must be a non-empty string");
    }
    platform_hint = platform_json->string;
  }
  std::vector<CrowdsourcingTask> tasks;
  tasks.reserve(tasks_json->items.size());
  for (const JsonValue& task_json : tasks_json->items) {
    if (!task_json.is_array()) {
      *status_code = 400;
      return ErrorBody("each task must be an array of thresholds in (0,1)");
    }
    std::vector<double> thresholds;
    thresholds.reserve(task_json.items.size());
    for (const JsonValue& t : task_json.items) {
      if (!t.is_number()) {
        *status_code = 400;
        return ErrorBody("each threshold must be a number in (0,1)");
      }
      thresholds.push_back(t.number);
    }
    Result<CrowdsourcingTask> task =
        CrowdsourcingTask::FromThresholds(std::move(thresholds));
    if (!task.ok()) {
      *status_code = 400;
      return ErrorBody(task.status().message());
    }
    tasks.push_back(std::move(*task));
  }

  // This blocks the worker until the owning micro-batch is solved (or the
  // submission is rejected / shed). That is intentional: under kBlock
  // backpressure a full queue becomes TCP backpressure on this
  // connection.
  std::future<Result<RequesterPlan>> future =
      engine_->Submit(requester->string, std::move(tasks),
                      std::move(submission_id), std::move(platform_hint));
  Result<RequesterPlan> plan = future.get();
  if (!plan.ok()) {
    const Status& status = plan.status();
    if (status.IsResourceExhausted()) {
      // Queue-full rejection, per-tenant quota, or a kShedOldest eviction
      // that picked this submission as the victim.
      *status_code = 429;
    } else if (status.IsInvalidArgument()) {
      *status_code = 400;
    } else if (status.IsNotFound()) {
      // Routing failed: the 'platform' hint (or the sticky/cheapest
      // policy) found no live platform to serve the submission.
      *status_code = 404;
    } else if (status.IsAlreadyExists()) {
      // The same submission_id is in flight right now (a *finished*
      // duplicate replays the original outcome as 200 below). The client
      // should wait for its first attempt rather than retry.
      *status_code = 409;
    } else {
      *status_code = 500;
    }
    return ErrorBody(status.message());
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("requester");
  w.Value(plan->requester_id);
  if (!plan->submission_id.empty()) {
    w.Key("submission_id");
    w.Value(plan->submission_id);
  }
  w.Key("duplicate");
  w.Value(plan->duplicate);
  w.Key("num_tasks");
  w.Value(static_cast<uint64_t>(plan->num_tasks()));
  w.Key("num_atomic_tasks");
  w.Value(static_cast<uint64_t>(plan->num_atomic_tasks()));
  w.Key("cost");
  w.Value(plan->cost);
  w.Key("bins_posted");
  w.Value(plan->bins_posted);
  w.Key("flush_id");
  w.Value(plan->flush_id);
  w.Key("latency_seconds");
  w.Value(plan->latency_seconds);
  if (!plan->platform.empty()) {
    // Registry-routed serving echoes where (and under which profile
    // epoch) the slice was solved.
    w.Key("platform");
    w.Value(plan->platform);
    w.Key("epoch");
    w.Value(plan->epoch);
  }
  w.EndObject();
  return std::move(w).Take();
}

std::string SladeServer::HandleStats() {
  const StreamingStats engine_stats = engine_->stats();
  const std::vector<TenantStats> tenants = engine_->tenant_stats();
  const ServerStats server_stats = stats();

  JsonWriter w;
  w.BeginObject();
  w.Key("engine");
  w.BeginObject();
  w.Key("submissions");
  w.Value(engine_stats.submissions);
  w.Key("tasks");
  w.Value(engine_stats.tasks);
  w.Key("atomic_tasks");
  w.Value(engine_stats.atomic_tasks);
  w.Key("flushes");
  w.Value(engine_stats.flushes);
  w.Key("flushes_by_size");
  w.Value(engine_stats.flushes_by_size);
  w.Key("flushes_by_deadline");
  w.Value(engine_stats.flushes_by_deadline);
  w.Key("flushes_by_drain");
  w.Value(engine_stats.flushes_by_drain);
  w.Key("solve_seconds");
  w.Value(engine_stats.solve_seconds);
  w.Key("total_cost");
  w.Value(engine_stats.total_cost);
  w.Key("rejected");
  w.Value(engine_stats.rejected);
  w.Key("rejected_tenant_quota");
  w.Value(engine_stats.rejected_tenant_quota);
  w.Key("shed");
  w.Value(engine_stats.shed);
  w.Key("blocked");
  w.Value(engine_stats.blocked);
  w.Key("queue_submissions");
  w.Value(engine_stats.queue_submissions);
  w.Key("queue_atomic_tasks");
  w.Value(engine_stats.queue_atomic_tasks);
  w.Key("queue_bytes");
  w.Value(engine_stats.queue_bytes);
  w.Key("duplicate_hits");
  w.Value(engine_stats.duplicate_hits);
  w.EndObject();

  if (options_.journal != nullptr) {
    const JournalStats journal_stats = options_.journal->stats();
    w.Key("durability");
    w.BeginObject();
    w.Key("records_appended");
    w.Value(journal_stats.wal.records_appended);
    w.Key("bytes_appended");
    w.Value(journal_stats.wal.bytes_appended);
    w.Key("fsyncs");
    w.Value(journal_stats.wal.fsyncs);
    w.Key("commit_batches");
    w.Value(journal_stats.wal.commit_batches);
    w.Key("commit_batch_p50");
    w.Value(journal_stats.wal.commit_batch_p50);
    w.Key("commit_batch_p95");
    w.Value(journal_stats.wal.commit_batch_p95);
    w.Key("commit_batch_max");
    w.Value(journal_stats.wal.commit_batch_max);
    w.Key("segments_created");
    w.Value(journal_stats.wal.segments_created);
    w.Key("segments_deleted");
    w.Value(journal_stats.wal.segments_deleted);
    w.Key("active_segment");
    w.Value(journal_stats.wal.active_segment);
    w.Key("admits");
    w.Value(journal_stats.admits);
    w.Key("completes");
    w.Value(journal_stats.completes);
    w.Key("rejects");
    w.Value(journal_stats.rejects);
    w.Key("checkpoints");
    w.Value(journal_stats.checkpoints);
    w.Key("append_errors");
    w.Value(journal_stats.append_errors);
    w.Key("live_submissions");
    w.Value(journal_stats.live_submissions);
    w.Key("retained_outcomes");
    w.Value(journal_stats.retained_outcomes);
    w.Key("recovery");
    w.BeginObject();
    w.Key("records_replayed");
    w.Value(journal_stats.recovery.records_replayed);
    w.Key("segments_scanned");
    w.Value(journal_stats.recovery.segments_scanned);
    w.Key("truncated");
    w.Value(journal_stats.recovery.truncated);
    w.Key("truncated_bytes");
    w.Value(journal_stats.recovery.truncated_bytes);
    w.Key("pending_recovered");
    w.Value(journal_stats.recovery.pending_recovered);
    w.Key("outcomes_recovered");
    w.Value(journal_stats.recovery.outcomes_recovered);
    w.Key("clean_shutdown");
    w.Value(journal_stats.recovery.clean_shutdown);
    w.EndObject();
    w.EndObject();
  }

  if (const ProfileRegistry* registry = engine_->options().registry) {
    // Multi-platform serving: per-platform routing/billing counters, the
    // platform's current profile epoch, and the drift the last
    // recalibration measured.
    w.Key("platforms");
    w.BeginArray();
    for (const PlatformStats& platform : registry->stats()) {
      w.BeginObject();
      w.Key("platform");
      w.Value(platform.platform_id);
      w.Key("epoch");
      w.Value(platform.epoch);
      w.Key("live");
      w.Value(platform.live);
      w.Key("promotions");
      w.Value(platform.promotions);
      w.Key("routed_submissions");
      w.Value(platform.routed_submissions);
      w.Key("routed_tasks");
      w.Value(platform.routed_tasks);
      w.Key("routed_atomic_tasks");
      w.Value(platform.routed_atomic_tasks);
      w.Key("billed_cost");
      w.Value(platform.billed_cost);
      w.Key("answers_folded");
      w.Value(platform.answers_folded);
      w.Key("last_recalibration_delta");
      w.Value(platform.last_recalibration_delta);
      w.EndObject();
    }
    w.EndArray();
  }

  w.Key("tenants");
  w.BeginArray();
  for (const TenantStats& tenant : tenants) {
    w.BeginObject();
    w.Key("tenant");
    w.Value(tenant.tenant);
    w.Key("weight");
    w.Value(tenant.weight);
    w.Key("submissions");
    w.Value(tenant.submissions);
    w.Key("tasks");
    w.Value(tenant.tasks);
    w.Key("atomic_tasks");
    w.Value(tenant.atomic_tasks);
    w.Key("delivered");
    w.Value(tenant.delivered);
    w.Key("flushes");
    w.Value(tenant.flushes);
    w.Key("rejected_quota");
    w.Value(tenant.rejected_quota);
    w.Key("shed");
    w.Value(tenant.shed);
    w.Key("billed_cost");
    w.Value(tenant.billed_cost);
    w.Key("platform_cost");
    w.Value(tenant.platform_cost);
    w.Key("pending_submissions");
    w.Value(tenant.pending_submissions);
    w.Key("pending_atomic_tasks");
    w.Value(tenant.pending_atomic_tasks);
    w.Key("pending_bytes");
    w.Value(tenant.pending_bytes);
    w.EndObject();
  }
  w.EndArray();

  w.Key("server");
  w.BeginObject();
  w.Key("connections_accepted");
  w.Value(server_stats.connections_accepted);
  w.Key("connections_refused");
  w.Value(server_stats.connections_refused);
  w.Key("requests");
  w.Value(server_stats.requests);
  w.Key("responses_2xx");
  w.Value(server_stats.responses_2xx);
  w.Key("responses_4xx");
  w.Value(server_stats.responses_4xx);
  w.Key("responses_5xx");
  w.Value(server_stats.responses_5xx);
  w.Key("rejected_429");
  w.Value(server_stats.rejected_429);
  w.Key("parse_errors");
  w.Value(server_stats.parse_errors);
  w.Key("bytes_in");
  w.Value(server_stats.bytes_in);
  w.Key("bytes_out");
  w.Value(server_stats.bytes_out);
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace slade
