// Copyright (c) the SLADE reproduction authors.
// Minimal JSON parsing and serialization for the HTTP front end.
//
// The server speaks a small JSON dialect: submit payloads come in as one
// object with string / number / nested-array members, and stats go out as
// one nested object. Nothing here aims to be a general JSON library; the
// point is a strict, bounded parser (depth and size caps, no surprises on
// hostile input -- it backs the request path of a network-facing server)
// and a writer that cannot emit malformed output.

#ifndef SLADE_SERVER_JSON_H_
#define SLADE_SERVER_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace slade {

/// \brief One parsed JSON value (a tree; arrays/objects own their
/// children). Object member order is preserved; duplicate keys are
/// rejected at parse time. Plain public fields: this is a passive parse
/// result, not an abstraction boundary.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Strict parse of a complete JSON document (any trailing non-space
  /// bytes are an error). `max_depth` bounds array/object nesting so a
  /// hostile "[[[[..." cannot recurse the stack away.
  static Result<JsonValue> Parse(const std::string& text,
                                 size_t max_depth = 32);

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
};

/// \brief Escapes `s` for inclusion inside a JSON string literal (quotes
/// not included).
std::string JsonEscape(const std::string& s);

/// \brief Append-only JSON writer producing one compact document.
///
/// \code
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("requests"); w.Value(42.0);
///   w.Key("tenants"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string doc = std::move(w).Take();
/// \endcode
///
/// The writer tracks separators itself, so every sequence of calls that
/// pairs Begin/End correctly yields valid JSON.
class JsonWriter {
 public:
  void BeginObject() { Prefix(); out_ += '{'; fresh_ = true; }
  void EndObject() { out_ += '}'; fresh_ = false; }
  void BeginArray() { Prefix(); out_ += '['; fresh_ = true; }
  void EndArray() { out_ += ']'; fresh_ = false; }

  void Key(const std::string& key) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(key);
    out_ += "\":";
    fresh_ = true;  // the value that follows needs no comma
  }

  void Value(const std::string& s) {
    Prefix();
    out_ += '"';
    out_ += JsonEscape(s);
    out_ += '"';
  }
  void Value(const char* s) { Value(std::string(s)); }
  void Value(double number);
  void Value(uint64_t number);
  void Value(bool b) { Prefix(); out_ += b ? "true" : "false"; }
  void Null() { Prefix(); out_ += "null"; }

  const std::string& str() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  void Prefix() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;  ///< next emit needs no separating comma
};

}  // namespace slade

#endif  // SLADE_SERVER_JSON_H_
