#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace slade {

namespace {

/// Recursive-descent parser over a bounded input. Position and error are
/// instance state; every production returns false on error.
class Parser {
 public:
  Parser(const std::string& text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    JsonValue value;
    if (!ParseValue(&value, 0)) return Status::InvalidArgument(error_);
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t length) {
    if (text_.compare(pos_, length, word) != 0) {
      return Fail(std::string("expected '") + word + "'");
    }
    pos_ += length;
    return true;
  }

  bool ParseValue(JsonValue* out, size_t depth) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of document");
    if (depth > max_depth_) return Fail("nesting deeper than cap");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null", 4);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseArray(JsonValue* out, size_t depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      out->items.emplace_back();
      if (!ParseValue(&out->items.back(), depth + 1)) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out, size_t depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      for (const auto& [existing, value] : out->members) {
        (void)value;
        if (existing == key) return Fail("duplicate object key '" + key + "'");
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      out->members.emplace_back(std::move(key), JsonValue());
      if (!ParseValue(&out->members.back().second, depth + 1)) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    for (;;) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control byte in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("unterminated escape");
      switch (text_[pos_]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          ++pos_;
          uint32_t code = 0;
          if (!ParseHex4(&code)) return false;
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must pair with a following \uDC00-\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xdc00 || low > 0xdfff) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(code, out);
          continue;  // ParseHex4 already advanced pos_
        }
        default:
          return Fail("unknown escape");
      }
      ++pos_;
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
      value = (value << 4) | digit;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return Fail("malformed number");
    // JSON forbids leading zeros ("042"); catch them for strictness.
    if (digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t fraction = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++fraction;
      }
      if (fraction == 0) return Fail("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exponent = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++exponent;
      }
      if (exponent == 0) return Fail("malformed number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Fail("number out of range");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  const std::string& text_;
  const size_t max_depth_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text,
                                   size_t max_depth) {
  return Parser(text, max_depth).Run();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Value(double number) {
  Prefix();
  char buf[64];
  if (std::isfinite(number)) {
    // Shortest representation that round-trips exactly: doubles need up
    // to 17 significant digits, but most values re-read exactly from 15
    // or 16, which keeps the output readable.
    for (int precision = 15; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, number);
      if (std::strtod(buf, nullptr) == number) break;
    }
  } else {
    // JSON has no NaN/Inf; null is the least-bad representation.
    std::snprintf(buf, sizeof(buf), "null");
  }
  out_ += buf;
}

void JsonWriter::Value(uint64_t number) {
  Prefix();
  out_ += std::to_string(number);
}

}  // namespace slade
