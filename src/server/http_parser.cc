#include "server/http_parser.h"

#include <algorithm>
#include <cctype>

namespace slade {

namespace {

bool IsTokenChar(unsigned char c) {
  // RFC 7230 token characters: the method and header names must be made
  // of these and nothing else.
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

/// Printable ASCII plus horizontal tab: the only bytes a header value or
/// request target may carry. Everything else (NUL, CR, LF smuggled via
/// splits, arbitrary control bytes) is malformed.
bool IsFieldChar(unsigned char c) {
  return c == '\t' || (c >= 0x20 && c < 0x7f);
}

std::string TrimWhitespace(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = FindHeader("connection");
  if (connection != nullptr) {
    const std::string value = ToLower(*connection);
    if (value == "close") return false;
    if (value == "keep-alive") return true;
  }
  return version == "HTTP/1.1";
}

HttpRequestParser::HttpRequestParser(HttpParserLimits limits)
    : limits_(limits) {}

void HttpRequestParser::Reset() {
  buffer_.clear();
  cursor_ = 0;
  phase_ = Phase::kRequestLine;
  state_ = HttpParseState::kNeedMore;
  request_ = HttpRequest();
  header_bytes_ = 0;
  body_expected_ = 0;
  error_code_ = 0;
  error_message_.clear();
}

void HttpRequestParser::FailWith(int code, std::string message) {
  phase_ = Phase::kFailed;
  state_ = HttpParseState::kError;
  error_code_ = code;
  error_message_ = std::move(message);
}

HttpParseState HttpRequestParser::Feed(const char* data, size_t size) {
  if (state_ == HttpParseState::kError) return state_;
  buffer_.append(data, size);
  if (state_ == HttpParseState::kComplete) return state_;  // bytes buffered
  return Advance();
}

HttpRequest HttpRequestParser::ConsumeRequest(HttpParseState* next_state) {
  HttpRequest done = std::move(request_);
  // Drop the consumed prefix so a long-lived keep-alive connection never
  // accumulates memory, then restart the machine on the leftovers.
  buffer_.erase(0, cursor_);
  cursor_ = 0;
  phase_ = Phase::kRequestLine;
  state_ = HttpParseState::kNeedMore;
  request_ = HttpRequest();
  header_bytes_ = 0;
  body_expected_ = 0;
  const HttpParseState state = Advance();
  if (next_state != nullptr) *next_state = state;
  return done;
}

bool HttpRequestParser::TakeLine(size_t cap, int cap_code, const char* what,
                                 std::string* line) {
  const size_t eol = buffer_.find('\n', cursor_);
  if (eol == std::string::npos) {
    // Not terminated yet -- but a partial line beyond the cap is already
    // an error, no matter how much more arrives.
    if (buffer_.size() - cursor_ > cap) {
      FailWith(cap_code, std::string(what) + " exceeds " +
                             std::to_string(cap) + " bytes");
    }
    return false;
  }
  if (eol == cursor_ || buffer_[eol - 1] != '\r') {
    FailWith(400, std::string(what) + " not terminated by CRLF");
    return false;
  }
  const size_t length = eol - 1 - cursor_;  // excluding CRLF
  if (length + 2 > cap) {
    FailWith(cap_code, std::string(what) + " exceeds " +
                           std::to_string(cap) + " bytes");
    return false;
  }
  line->assign(buffer_, cursor_, length);
  cursor_ = eol + 1;
  return true;
}

bool HttpRequestParser::ParseRequestLine(const std::string& line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    FailWith(400, "malformed request line");
    return false;
  }
  request_.method = line.substr(0, sp1);
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = line.substr(sp2 + 1);
  if (request_.method.empty() || request_.method.size() > 32) {
    FailWith(400, "malformed method");
    return false;
  }
  for (const char c : request_.method) {
    if (!IsTokenChar(static_cast<unsigned char>(c))) {
      FailWith(400, "malformed method");
      return false;
    }
  }
  if (request_.target.empty() || request_.target.find(' ') !=
                                     std::string::npos) {
    FailWith(400, "malformed request target");
    return false;
  }
  for (const char c : request_.target) {
    // Stricter than field chars: a target is visible ASCII only (no tab,
    // no space -- a space would mean the request line had four parts).
    if (!IsFieldChar(static_cast<unsigned char>(c)) || c == ' ' ||
        c == '\t') {
      FailWith(400, "malformed request target");
      return false;
    }
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    FailWith(505, "unsupported HTTP version '" + request_.version + "'");
    return false;
  }
  return true;
}

bool HttpRequestParser::ParseHeaderLine(const std::string& line) {
  if (line[0] == ' ' || line[0] == '\t') {
    // Obsolete line folding: deprecated by RFC 7230 and a classic
    // request-smuggling vector; reject outright.
    FailWith(400, "obsolete header line folding");
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    FailWith(400, "malformed header line");
    return false;
  }
  std::string name = line.substr(0, colon);
  for (const char c : name) {
    if (!IsTokenChar(static_cast<unsigned char>(c))) {
      FailWith(400, "malformed header name");
      return false;
    }
  }
  std::string value = TrimWhitespace(line.substr(colon + 1));
  for (const char c : value) {
    if (!IsFieldChar(static_cast<unsigned char>(c))) {
      FailWith(400, "control byte in header value");
      return false;
    }
  }
  if (request_.headers.size() >= limits_.max_headers) {
    FailWith(431, "more than " + std::to_string(limits_.max_headers) +
                      " header fields");
    return false;
  }
  request_.headers.emplace_back(ToLower(std::move(name)), std::move(value));
  return true;
}

bool HttpRequestParser::BeginBody() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    FailWith(501, "transfer-encoding is not supported; use content-length");
    return false;
  }
  const std::string* content_length = request_.FindHeader("content-length");
  if (content_length == nullptr) {
    body_expected_ = 0;
    return true;
  }
  // Duplicate Content-Length headers are another smuggling vector: all
  // occurrences must agree byte for byte.
  for (const auto& [key, value] : request_.headers) {
    if (key == "content-length" && value != *content_length) {
      FailWith(400, "conflicting content-length headers");
      return false;
    }
  }
  if (content_length->empty() || content_length->size() > 18) {
    FailWith(400, "malformed content-length");
    return false;
  }
  uint64_t length = 0;
  for (const char c : *content_length) {
    if (c < '0' || c > '9') {
      FailWith(400, "malformed content-length");
      return false;
    }
    length = length * 10 + static_cast<uint64_t>(c - '0');
  }
  if (length > limits_.max_body_bytes) {
    FailWith(413, "body of " + std::to_string(length) +
                      " bytes exceeds the cap of " +
                      std::to_string(limits_.max_body_bytes));
    return false;
  }
  body_expected_ = static_cast<size_t>(length);
  return true;
}

HttpParseState HttpRequestParser::Advance() {
  for (;;) {
    switch (phase_) {
      case Phase::kRequestLine: {
        std::string line;
        if (!TakeLine(limits_.max_request_line_bytes, 431, "request line",
                      &line)) {
          return state_;
        }
        if (!ParseRequestLine(line)) return state_;
        phase_ = Phase::kHeaders;
        break;
      }
      case Phase::kHeaders: {
        // The per-line cap is whatever header budget is left, so the total
        // across all header lines (separators included) stays bounded.
        if (header_bytes_ > limits_.max_header_bytes) {
          FailWith(431, "header fields exceed " +
                            std::to_string(limits_.max_header_bytes) +
                            " bytes");
          return state_;
        }
        const size_t before = cursor_;
        std::string line;
        if (!TakeLine(limits_.max_header_bytes - header_bytes_ + 2, 431,
                      "header fields", &line)) {
          return state_;
        }
        header_bytes_ += cursor_ - before;
        if (line.empty()) {  // blank line: headers done
          if (!BeginBody()) return state_;
          phase_ = Phase::kBody;
          break;
        }
        if (!ParseHeaderLine(line)) return state_;
        break;
      }
      case Phase::kBody: {
        if (buffer_.size() - cursor_ < body_expected_) {
          return state_;  // kNeedMore
        }
        request_.body.assign(buffer_, cursor_, body_expected_);
        cursor_ += body_expected_;
        phase_ = Phase::kDone;
        state_ = HttpParseState::kComplete;
        return state_;
      }
      case Phase::kDone:
      case Phase::kFailed:
        return state_;
    }
  }
}

}  // namespace slade
