// Copyright (c) the SLADE reproduction authors.
// Network front end: a long-lived HTTP/1.1 JSON server over the streaming
// engine.
//
// The platform story so far ends at a C++ API: StreamingEngine::Submit.
// SladeServer puts a wire in front of it so requesters on other machines
// (and load generators in CI) can drive the decomposition platform over
// plain HTTP:
//
//   POST /v1/submit   {"requester": "r1", "tasks": [[0.9, 0.8], [0.7]]}
//     -> 200 with the requester's plan slice (cost, bins, flush id,
//        latency), or 429 + Retry-After when admission backpressure
//        rejects or sheds the submission, or 400/413 on malformed input.
//   GET /v1/stats     engine + per-tenant + server counters as JSON.
//   GET /healthz      liveness probe ("ok").
//
// Concurrency model: one event-loop thread owns every socket -- it
// accepts, reads, feeds the strict bounded HttpRequestParser, and writes
// responses (partial writes included). Complete requests are handed to a
// small worker pool; workers may block on the engine future (that *is*
// the kBlock backpressure story: a slow solver turns into TCP
// backpressure on the submitting connection), then push the finished
// response back to the loop through a self-pipe. A connection processes
// one request at a time; pipelined bytes stay buffered in its parser
// until the in-flight response is written, so responses are trivially in
// order.
//
// Shutdown() is graceful and idempotent: the listener closes first (no
// new connections), in-flight requests finish and their responses are
// flushed, then the loop and workers exit. The engine is drained by its
// own destructor after the server is gone, so every admitted submission
// is answered even on shutdown.

#ifndef SLADE_SERVER_SLADE_SERVER_H_
#define SLADE_SERVER_SLADE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "durability/journal.h"
#include "engine/streaming_engine.h"
#include "server/http_parser.h"

namespace slade {

struct ServerOptions {
  /// Listen address; tests bind 127.0.0.1.
  std::string address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads executing request handlers. Submit handlers block on
  /// the engine future, so this bounds concurrent in-flight submissions.
  size_t num_workers = 4;
  /// Hard cap on concurrent connections; accepts beyond it are refused
  /// with 503 and closed.
  size_t max_connections = 256;
  /// Request parsing caps (request line, headers, body).
  HttpParserLimits parser_limits;
  /// Advisory Retry-After (seconds) on 429 responses.
  uint64_t retry_after_seconds = 1;
  /// Durability journal backing the engine (non-owning; must outlive the
  /// server). When set, /v1/stats exports the durability counters and
  /// Shutdown() finishes the crash-safety story: drain the engine, write
  /// a clean-shutdown checkpoint, compact — so a restart on the same WAL
  /// directory skips recovery. nullptr = no durability (previous
  /// behavior).
  SubmissionJournal* journal = nullptr;
};

/// \brief Wire-level counters, readable at any time via stats().
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< over max_connections
  uint64_t requests = 0;             ///< complete requests dispatched
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  uint64_t rejected_429 = 0;   ///< backpressure / quota rejections
  uint64_t parse_errors = 0;   ///< malformed requests (400/413/431/...)
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// \brief HTTP/1.1 front end over a StreamingEngine (not owned; it must
/// outlive the server, and destroying it after Shutdown() drains every
/// admitted submission).
class SladeServer {
 public:
  SladeServer(StreamingEngine* engine, ServerOptions options = {});
  ~SladeServer();  ///< implies Shutdown()

  SladeServer(const SladeServer&) = delete;
  SladeServer& operator=(const SladeServer&) = delete;

  /// Binds, listens, and starts the event loop + workers. Fails with
  /// IoError if the address/port cannot be bound. Calling Start() twice
  /// is an error.
  Status Start();

  /// The bound port (resolves port 0 to the actual ephemeral port).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  /// Graceful stop: close the listener, finish in-flight requests, flush
  /// their responses, join all threads. Safe to call from any thread and
  /// any number of times; later calls are no-ops.
  void Shutdown();

  ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    HttpRequestParser parser;
    std::string outbox;      ///< response bytes not yet written
    size_t out_offset = 0;
    bool busy = false;       ///< a request is in flight with a worker
    bool close_after_write = false;
    explicit Connection(HttpParserLimits limits) : parser(limits) {}
  };

  struct WorkItem {
    uint64_t conn_id = 0;
    HttpRequest request;
  };

  struct Finished {
    uint64_t conn_id = 0;
    std::string response;
    bool close_after_write = false;
  };

  void EventLoop();
  void WorkerLoop();
  void AcceptPending();
  /// Reads from `conn`, feeds the parser, dispatches at most one request
  /// or queues an error response. Returns false when the connection died;
  /// the caller must CloseConnection (never erases connections_ itself,
  /// so it is safe to call while iterating the map).
  bool ReadAndDispatch(uint64_t conn_id, Connection* conn);
  /// Flushes the outbox. Returns false when the connection died.
  bool WriteOut(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void NotifyLoop();  ///< self-pipe wakeup

  /// Runs one request to a response (status line through body). Counts
  /// response classes under stats_mutex_.
  std::string Handle(const HttpRequest& request, bool* close_connection);
  std::string HandleSubmit(const HttpRequest& request, int* status_code);
  std::string HandleStats();
  /// `head_only` (HEAD requests) sends the headers -- Content-Length
  /// still describes the body a GET would return -- but omits the body.
  static std::string RenderResponse(int status_code, const std::string& body,
                                    bool close_connection,
                                    const std::string& extra_headers,
                                    bool head_only = false);

  StreamingEngine* const engine_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Owned by the event loop; only it touches connections_ after Start().
  std::map<uint64_t, Connection> connections_;
  uint64_t next_conn_id_ = 1;

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_queue_;

  std::mutex finished_mutex_;
  std::deque<Finished> finished_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::vector<std::thread> workers_;
  std::thread loop_thread_;
  std::mutex shutdown_mutex_;  ///< serializes concurrent Shutdown() calls
};

}  // namespace slade

#endif  // SLADE_SERVER_SLADE_SERVER_H_
