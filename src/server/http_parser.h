// Copyright (c) the SLADE reproduction authors.
// A hand-rolled, strictly bounded HTTP/1.1 request parser.
//
// The network front end cannot trust a byte of what a socket delivers, so
// the parser is written for hostility first: every dimension of a request
// (request-line length, header bytes, header count, body bytes) has a hard
// cap, every malformed input maps to a definite HTTP status code, and no
// input -- truncated, oversized, split across arbitrary read boundaries,
// or pipelined -- can make it crash, loop, or allocate beyond its caps.
//
// The parser is incremental and pull-based: Feed() appends whatever bytes
// the socket produced; the parser consumes them into at most one complete
// request at a time. When a request completes, bytes beyond it (pipelined
// requests) stay buffered; ConsumeRequest() hands out the finished request
// and immediately resumes parsing the leftovers, so a tight
// Feed/ConsumeRequest loop drains a pipeline without re-reading the
// socket. After an error the parser stays in the error state (the
// connection is unrecoverable: framing is lost) until Reset().

#ifndef SLADE_SERVER_HTTP_PARSER_H_
#define SLADE_SERVER_HTTP_PARSER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace slade {

/// \brief Hard caps on one request's dimensions. Exceeding a cap is a
/// definite protocol error (431 for the request line / headers, 413 for
/// the body), never a resize.
struct HttpParserLimits {
  size_t max_request_line_bytes = 8192;
  /// Total bytes across all header lines (names, values, separators).
  size_t max_header_bytes = 16384;
  size_t max_headers = 64;
  size_t max_body_bytes = 4u << 20;  // 4 MiB
};

/// \brief One parsed request. Header names are lower-cased at parse time
/// (HTTP header names are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (must be given lower-cased), or nullptr.
  const std::string* FindHeader(const std::string& name) const;

  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  bool keep_alive() const;
};

/// \brief Parser state visible to the caller after each Feed().
enum class HttpParseState {
  kNeedMore,  ///< no complete request buffered yet; feed more bytes
  kComplete,  ///< a request is ready: call ConsumeRequest()
  kError,     ///< protocol error: answer error_code() and close
};

/// \brief Incremental bounded parser for one connection's request stream.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpParserLimits limits = {});

  /// Appends `size` bytes and advances the parse. Returns the resulting
  /// state; kComplete means one request is ready (further pipelined bytes
  /// stay buffered). Feeding after kComplete is allowed and buffers the
  /// bytes for the next request; feeding after kError is a no-op.
  HttpParseState Feed(const char* data, size_t size);

  /// Current state without feeding.
  HttpParseState state() const { return state_; }

  /// Moves out the completed request and resumes parsing any buffered
  /// pipelined bytes; the returned state is the state of the *next*
  /// request (kComplete again if it was fully buffered). Must only be
  /// called in state kComplete.
  HttpRequest ConsumeRequest(HttpParseState* next_state);

  /// In state kError: the HTTP status code that describes the error
  /// (400 malformed, 413 body too large, 431 request line / header fields
  /// too large, 501 unsupported transfer encoding, 505 bad version).
  int error_code() const { return error_code_; }
  const std::string& error_message() const { return error_message_; }

  /// Returns to a pristine kNeedMore state, dropping all buffered bytes.
  void Reset();

  const HttpParserLimits& limits() const { return limits_; }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kDone, kFailed };

  HttpParseState Advance();
  bool ParseRequestLine(const std::string& line);
  bool ParseHeaderLine(const std::string& line);
  /// After the blank line: validates framing headers and decides how many
  /// body bytes to expect. Sets the error state on bad framing.
  bool BeginBody();
  void FailWith(int code, std::string message);
  /// Extracts one CRLF-terminated line from buffer_ starting at cursor_,
  /// enforcing `cap` on the line length (error `cap_code` beyond it).
  /// Returns false when the line is still incomplete (or on error).
  bool TakeLine(size_t cap, int cap_code, const char* what,
                std::string* line);

  const HttpParserLimits limits_;
  std::string buffer_;   ///< unconsumed raw bytes
  size_t cursor_ = 0;    ///< parse position inside buffer_
  Phase phase_ = Phase::kRequestLine;
  HttpParseState state_ = HttpParseState::kNeedMore;
  HttpRequest request_;  ///< request under construction / completed
  size_t header_bytes_ = 0;
  size_t body_expected_ = 0;
  int error_code_ = 0;
  std::string error_message_;
};

}  // namespace slade

#endif  // SLADE_SERVER_HTTP_PARSER_H_
