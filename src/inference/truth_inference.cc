#include "inference/truth_inference.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace slade {

namespace {

Status CheckAnswers(const std::vector<WorkerAnswer>& answers,
                    size_t num_tasks) {
  if (num_tasks == 0) {
    return Status::InvalidArgument("num_tasks must be positive");
  }
  for (const WorkerAnswer& a : answers) {
    if (a.task >= num_tasks) {
      return Status::OutOfRange("answer references task " +
                                std::to_string(a.task) + " but num_tasks=" +
                                std::to_string(num_tasks));
    }
  }
  return Status::OK();
}

}  // namespace

Result<InferenceResult> MajorityVote(const std::vector<WorkerAnswer>& answers,
                                     size_t num_tasks) {
  SLADE_RETURN_NOT_OK(CheckAnswers(answers, num_tasks));
  std::vector<uint32_t> positive(num_tasks, 0), total(num_tasks, 0);
  for (const WorkerAnswer& a : answers) {
    ++total[a.task];
    if (a.answer) ++positive[a.task];
  }
  InferenceResult result;
  result.posterior.resize(num_tasks);
  result.labels.resize(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    result.posterior[i] =
        total[i] == 0 ? 0.5
                      : static_cast<double>(positive[i]) /
                            static_cast<double>(total[i]);
    result.labels[i] = result.posterior[i] >= 0.5;
  }
  // Report each worker's agreement with the majority labels.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> agree;
  for (const WorkerAnswer& a : answers) {
    auto& [match, count] = agree[a.worker];
    ++count;
    if (a.answer == result.labels[a.task]) ++match;
  }
  for (const auto& [worker, counts] : agree) {
    result.worker_accuracy[worker] =
        static_cast<double>(counts.first) /
        static_cast<double>(counts.second);
  }
  return result;
}

Result<InferenceResult> DawidSkeneBinary(
    const std::vector<WorkerAnswer>& answers, size_t num_tasks,
    const DawidSkeneOptions& options) {
  SLADE_RETURN_NOT_OK(CheckAnswers(answers, num_tasks));
  if (!(options.prior_positive > 0.0 && options.prior_positive < 1.0)) {
    return Status::InvalidArgument("prior_positive must be in (0, 1)");
  }
  if (!(options.initial_accuracy > 0.5 && options.initial_accuracy < 1.0)) {
    return Status::InvalidArgument(
        "initial_accuracy must be in (0.5, 1) to break label symmetry");
  }

  // Dense reindexing of workers.
  std::unordered_map<uint32_t, size_t> worker_index;
  for (const WorkerAnswer& a : answers) {
    worker_index.emplace(a.worker, worker_index.size());
  }
  const size_t num_workers = worker_index.size();
  std::vector<double> accuracy(num_workers, options.initial_accuracy);

  // Group answers per task for the E-step.
  std::vector<std::vector<std::pair<size_t, bool>>> by_task(num_tasks);
  for (const WorkerAnswer& a : answers) {
    by_task[a.task].emplace_back(worker_index.at(a.worker), a.answer);
  }

  std::vector<double> posterior(num_tasks, options.prior_positive);
  const double log_prior_pos = std::log(options.prior_positive);
  const double log_prior_neg = std::log1p(-options.prior_positive);

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    // E-step: posteriors from accuracies (log domain).
    double max_delta = 0.0;
    for (size_t i = 0; i < num_tasks; ++i) {
      if (by_task[i].empty()) {
        posterior[i] = 0.5;
        continue;
      }
      double lp = log_prior_pos, ln = log_prior_neg;
      for (const auto& [w, ans] : by_task[i]) {
        const double p = accuracy[w];
        // Positive truth: answer==true is correct; negative truth:
        // answer==false is correct.
        lp += std::log(ans ? p : 1.0 - p);
        ln += std::log(ans ? 1.0 - p : p);
      }
      const double m = std::max(lp, ln);
      const double pos =
          std::exp(lp - m) / (std::exp(lp - m) + std::exp(ln - m));
      max_delta = std::max(max_delta, std::fabs(pos - posterior[i]));
      posterior[i] = pos;
    }

    // M-step: accuracies from posteriors, Beta(a, a) smoothed.
    std::vector<double> correct(num_workers,
                                options.accuracy_pseudo_count *
                                    options.initial_accuracy);
    std::vector<double> count(num_workers, options.accuracy_pseudo_count);
    for (size_t i = 0; i < num_tasks; ++i) {
      for (const auto& [w, ans] : by_task[i]) {
        // P(answer correct) = P(z=1)*[ans] + P(z=0)*[!ans].
        correct[w] += ans ? posterior[i] : 1.0 - posterior[i];
        count[w] += 1.0;
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      accuracy[w] = std::clamp(correct[w] / count[w], 1e-3, 1.0 - 1e-3);
    }

    if (max_delta < options.tolerance && iteration > 0) {
      ++iteration;
      break;
    }
  }

  InferenceResult result;
  result.posterior = std::move(posterior);
  result.labels.resize(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    result.labels[i] = result.posterior[i] >= 0.5;
  }
  for (const auto& [worker, idx] : worker_index) {
    result.worker_accuracy[worker] = accuracy[idx];
  }
  result.iterations = iteration;
  return result;
}

double ConfidenceFromAgreement(double agreement_rate) {
  const double excess = 2.0 * agreement_rate - 1.0;
  if (excess <= 0.0) return 0.5;
  return 0.5 * (1.0 + std::sqrt(excess));
}

uint64_t AgreeingPairs(uint64_t positive, uint64_t total) {
  if (positive > total) return 0;
  const uint64_t negative = total - positive;
  return positive * (positive - 1) / 2 + negative * (negative - 1) / 2;
}

double LabelAccuracy(const InferenceResult& result,
                     const std::vector<bool>& truth,
                     const std::vector<WorkerAnswer>& answers) {
  std::unordered_set<TaskId> answered;
  for (const WorkerAnswer& a : answers) answered.insert(a.task);
  if (answered.empty()) return 0.0;
  size_t correct = 0;
  for (TaskId id : answered) {
    if (id < truth.size() && result.labels[id] == truth[id]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(answered.size());
}

}  // namespace slade
