// Copyright (c) the SLADE reproduction authors.
//
// Truth inference over redundant crowd answers. The SLADE paper assumes an
// aggregation layer exists ("each atomic task is usually performed by
// multiple crowd workers to guarantee the quality of the task", Section
// 3.1, citing CrowdER [5] and Zheng et al. [7]); this module provides it:
//
//   * majority voting -- the baseline aggregator;
//   * a binary one-coin Dawid-Skene EM -- jointly estimates per-worker
//     accuracy and per-task truth posteriors.
//
// The adaptive decomposer (src/adaptive/) uses inferred truths to monitor
// bin confidence on-line, mirroring the paper's "testing task bins as
// real-time probes" discussion without requiring ground truth.

#ifndef SLADE_INFERENCE_TRUTH_INFERENCE_H_
#define SLADE_INFERENCE_TRUTH_INFERENCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "binmodel/task.h"
#include "common/result.h"

namespace slade {

/// \brief One worker's boolean answer to one atomic task.
struct WorkerAnswer {
  uint32_t worker = 0;
  TaskId task = 0;
  bool answer = false;
};

/// \brief Output of an inference run.
struct InferenceResult {
  /// P(truth = positive) per task; 0.5 for tasks with no answers.
  std::vector<double> posterior;
  /// Hard labels: posterior >= 0.5.
  std::vector<bool> labels;
  /// Estimated accuracy per worker id (EM only; majority voting reports
  /// the empirical agreement with the majority labels).
  std::unordered_map<uint32_t, double> worker_accuracy;
  /// EM iterations executed (0 for majority voting).
  int iterations = 0;
};

/// \brief Majority voting: posterior = fraction of positive answers
/// (ties -> 0.5). `num_tasks` sizes the output; answers referencing tasks
/// beyond it are rejected.
Result<InferenceResult> MajorityVote(const std::vector<WorkerAnswer>& answers,
                                     size_t num_tasks);

/// \brief Options for the EM aggregator.
struct DawidSkeneOptions {
  int max_iterations = 100;
  /// Stop when the largest posterior change falls below this.
  double tolerance = 1e-8;
  /// Prior probability that a task's truth is positive.
  double prior_positive = 0.5;
  /// Beta(a, a) pseudo-counts regularizing worker accuracies toward the
  /// initial value; prevents degenerate 0/1 accuracies for workers with
  /// few answers.
  double accuracy_pseudo_count = 2.0;
  /// Initial worker accuracy (must be > 0.5 to break the label-flip
  /// symmetry of the one-coin model).
  double initial_accuracy = 0.7;
};

/// \brief Binary one-coin Dawid-Skene EM: each worker answers correctly
/// with (latent) probability p_j independent of the true label.
///
/// E-step: task posteriors from current accuracies; M-step: accuracies
/// from current posteriors, with Beta smoothing. Converges to a local
/// optimum; with `initial_accuracy > 0.5` the truthful labeling basin is
/// selected.
Result<InferenceResult> DawidSkeneBinary(
    const std::vector<WorkerAnswer>& answers, size_t num_tasks,
    const DawidSkeneOptions& options = {});

/// \brief Fraction of tasks whose inferred label matches `truth`
/// (evaluation helper; only counts tasks that received >= 1 answer).
double LabelAccuracy(const InferenceResult& result,
                     const std::vector<bool>& truth,
                     const std::vector<WorkerAnswer>& answers);

/// \brief Moment estimator of worker confidence from pairwise agreement.
///
/// Two independent answers to the same task agree with probability
/// `a = r^2 + (1-r)^2`; inverting on the r > 0.5 branch gives
/// `r = (1 + sqrt(max(0, 2a - 1))) / 2`.
///
/// Unlike agreement-against-inferred-labels, this is consistent without
/// ground truth even at low redundancy: when two workers agree on a WRONG
/// answer, label-based agreement counts both as correct (the majority
/// defines the label), while the pairwise rate prices that case in
/// exactly. The adaptive quality monitor uses it for cardinalities whose
/// bins revisit the same tasks. `agreement_rate` below 0.5 (noisier than
/// coin flips) clamps to r = 0.5.
double ConfidenceFromAgreement(double agreement_rate);

/// \brief Counts agreeing pairs among k boolean answers with
/// `positive` positives: C(positive,2) + C(k-positive,2) of C(k,2).
/// Helper for accumulating pairwise agreement statistics.
uint64_t AgreeingPairs(uint64_t positive, uint64_t total);

}  // namespace slade

#endif  // SLADE_INFERENCE_TRUTH_INFERENCE_H_
