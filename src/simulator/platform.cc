#include "simulator/platform.h"

#include <algorithm>
#include <cmath>

namespace slade {

Platform::Platform(const PlatformConfig& config)
    : config_(config), rng_(config.seed) {}

bool Platform::IsSpammer(uint32_t id) const {
  if (config_.spammer_fraction <= 0.0) return false;
  SplitMix64 sm(config_.seed ^ (0xD1B54A32D192ED03ULL * (id + 1)));
  const double u = static_cast<double>(sm.Next() >> 11) * 0x1.0p-53;
  return u < config_.spammer_fraction;
}

double Platform::WorkerSkill(uint32_t id) const {
  if (config_.skill_sigma <= 0.0) return 1.0;
  // Deterministic per-worker skill: hash the (seed, id) pair into a
  // standard normal via two SplitMix64 draws and Box-Muller.
  SplitMix64 sm(config_.seed ^ (0xA24BAED4963EE407ULL * (id + 1)));
  const double u1 =
      (static_cast<double>(sm.Next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(sm.Next() >> 11) * 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(config_.skill_sigma * z);
}

Result<BinOutcome> Platform::PostBin(uint32_t cardinality, double bin_cost,
                                     const std::vector<bool>& ground_truth,
                                     int assignments,
                                     const BinPostContext& context) {
  if (cardinality == 0) {
    return Status::InvalidArgument("bin cardinality must be >= 1");
  }
  if (!(context.latency_multiplier > 0.0)) {
    return Status::InvalidArgument("latency multiplier must be positive");
  }
  if (context.extra_spammer_fraction < 0.0 ||
      context.extra_spammer_fraction > 1.0) {
    return Status::InvalidArgument(
        "extra spammer fraction must be in [0, 1]");
  }
  if (ground_truth.empty() || ground_truth.size() > cardinality) {
    return Status::InvalidArgument(
        "a bin holds between 1 and cardinality atomic tasks; got " +
        std::to_string(ground_truth.size()) + " for cardinality " +
        std::to_string(cardinality));
  }
  if (!(bin_cost > 0.0)) {
    return Status::InvalidArgument("bin cost must be positive");
  }
  if (assignments < 1) {
    return Status::InvalidArgument("need at least one assignment");
  }

  const DatasetModel& model = config_.model;
  const double base_confidence =
      ModelConfidence(model, cardinality, bin_cost);
  const double base_failure = 1.0 - base_confidence;

  // Pay-sensitive Poisson arrivals: the mean time for all assignments is
  // ModelCompletionMinutes; individual arrivals are exponential.
  const double mean_total =
      ModelCompletionMinutes(model, cardinality, bin_cost);
  const double per_assignment_rate =
      static_cast<double>(assignments) / mean_total;

  BinOutcome outcome;
  outcome.assignments.reserve(assignments);
  double clock = 0.0;
  for (int a = 0; a < assignments; ++a) {
    // Inter-arrival time of the next accepting worker.
    const double u = 1.0 - rng_.NextDouble();
    clock += -std::log(u) / per_assignment_rate;

    AssignmentOutcome assignment;
    // Churn salts the identity space: epoch e draws from worker ids
    // [e * population, (e+1) * population), so skills, steady-state
    // spammer membership and the ids seen by truth inference all
    // reshuffle when the epoch advances.
    assignment.worker_id = static_cast<uint32_t>(
        static_cast<uint64_t>(context.worker_epoch) * config_.population +
        rng_.NextBounded(config_.population));
    assignment.answers.reserve(ground_truth.size());
    const bool burst_spammer =
        context.extra_spammer_fraction > 0.0 &&
        rng_.NextBernoulli(context.extra_spammer_fraction);
    if (burst_spammer || IsSpammer(assignment.worker_id)) {
      // Spammers click through without reading the task.
      for (size_t k = 0; k < ground_truth.size(); ++k) {
        assignment.answers.push_back(rng_.NextBernoulli(0.5));
      }
    } else {
      const double skill = WorkerSkill(assignment.worker_id);
      const double failure = std::clamp(base_failure * skill, 0.0, 0.98);
      for (bool truth : ground_truth) {
        const bool correct = !rng_.NextBernoulli(failure);
        assignment.answers.push_back(correct ? truth : !truth);
      }
    }
    outcome.assignments.push_back(std::move(assignment));

    // Workers are paid on submission regardless of timeliness.
    total_spent_ += bin_cost;
  }
  outcome.completion_minutes = clock * context.latency_multiplier;
  outcome.overtime = outcome.completion_minutes > model.timeout_minutes;
  ++bins_posted_;
  return outcome;
}

}  // namespace slade
