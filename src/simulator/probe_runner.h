// Copyright (c) the SLADE reproduction authors.
// Issuing ground-truth probe bins on the simulated platform to estimate
// bin confidences (paper Section 3.1).

#ifndef SLADE_SIMULATOR_PROBE_RUNNER_H_
#define SLADE_SIMULATOR_PROBE_RUNNER_H_

#include <cstdint>
#include <vector>

#include "binmodel/calibration.h"
#include "simulator/platform.h"

namespace slade {

/// \brief Probe campaign configuration.
struct ProbePlan {
  /// Cardinalities to probe (e.g. {1, 2, 4, 8, 16}); bins at each are
  /// posted at the model's minimum in-time cost (ModelBinCost).
  std::vector<uint32_t> cardinalities;
  /// Probe bins posted per cardinality.
  uint32_t bins_per_cardinality = 20;
  /// Worker assignments collected per probe bin.
  int assignments_per_bin = 3;
  /// Fraction of probe tasks whose ground truth is positive.
  double positive_rate = 0.5;
  uint64_t seed = 7;
};

/// \brief Posts the probe bins and aggregates correctness counts into
/// per-cardinality `ProbeObservation`s suitable for CalibrateProfile.
///
/// The probe tasks are synthetic atomic tasks whose ground truth the
/// requester knows (Section 3.1's "testing task bins"); every worker
/// answer is compared against it.
Result<std::vector<ProbeObservation>> RunProbes(Platform& platform,
                                                const ProbePlan& plan);

}  // namespace slade

#endif  // SLADE_SIMULATOR_PROBE_RUNNER_H_
