#include "simulator/executor.h"

namespace slade {

Result<ExecutionReport> ExecutePlan(Platform& platform,
                                    const DecompositionPlan& plan,
                                    const BinProfile& profile,
                                    const std::vector<bool>& ground_truth) {
  const size_t n = ground_truth.size();
  ExecutionReport report;
  report.detected.assign(n, false);

  for (const BinPlacement& placement : plan.placements()) {
    if (placement.tasks.empty()) continue;
    const TaskBin& bin = profile.bin(placement.cardinality);
    std::vector<bool> truth;
    truth.reserve(placement.tasks.size());
    for (TaskId id : placement.tasks) {
      if (id >= n) {
        return Status::OutOfRange("plan references task " +
                                  std::to_string(id) + " but n=" +
                                  std::to_string(n));
      }
      truth.push_back(ground_truth[id]);
    }
    for (uint32_t copy = 0; copy < placement.copies; ++copy) {
      SLADE_ASSIGN_OR_RETURN(
          BinOutcome outcome,
          platform.PostBin(placement.cardinality, bin.cost, truth,
                           /*assignments=*/1));
      ++report.bins_posted;
      if (outcome.overtime) ++report.overtime_bins;
      report.total_cost += bin.cost;
      const AssignmentOutcome& assignment = outcome.assignments.front();
      for (size_t i = 0; i < placement.tasks.size(); ++i) {
        if (assignment.answers[i]) {
          report.detected[placement.tasks[i]] = true;
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!ground_truth[i]) continue;
    ++report.positives;
    if (!report.detected[i]) ++report.false_negatives;
  }
  report.positive_recall =
      report.positives == 0
          ? 1.0
          : 1.0 - static_cast<double>(report.false_negatives) /
                      static_cast<double>(report.positives);
  return report;
}

}  // namespace slade
