#include "simulator/fault_injector.h"

#include <cstdio>

namespace slade {

std::string FaultOptions::ToString() const {
  if (!any()) return "none";
  std::string out;
  char buf[96];
  if (spammer_burst_period > 0) {
    std::snprintf(buf, sizeof(buf), "spammer-burst %llu/%llu @%.2f ",
                  static_cast<unsigned long long>(spammer_burst_length),
                  static_cast<unsigned long long>(spammer_burst_period),
                  spammer_burst_fraction);
    out += buf;
  }
  if (churn_period > 0) {
    std::snprintf(buf, sizeof(buf), "churn/%llu ",
                  static_cast<unsigned long long>(churn_period));
    out += buf;
  }
  if (straggler_fraction > 0.0) {
    std::snprintf(buf, sizeof(buf), "stragglers %.2f x%.1f ",
                  straggler_fraction, straggler_multiplier);
    out += buf;
  }
  if (outage_period > 0) {
    std::snprintf(buf, sizeof(buf), "outage %llu/%llu ",
                  static_cast<unsigned long long>(outage_length),
                  static_cast<unsigned long long>(outage_period));
    out += buf;
  }
  out.pop_back();  // trailing space
  return out;
}

FaultInjector::FaultInjector(const FaultOptions& options)
    : options_(options), straggler_rng_(options.seed) {}

FaultInjector::Decision FaultInjector::NextBin() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t ordinal = attempt_++;
  ++stats_.attempts;

  Decision decision;
  if (options_.outage_period > 0 &&
      ordinal % options_.outage_period < options_.outage_length) {
    decision.outage = true;
    ++stats_.outages;
    return decision;
  }
  if (options_.spammer_burst_period > 0 &&
      ordinal % options_.spammer_burst_period <
          options_.spammer_burst_length) {
    decision.context.extra_spammer_fraction = options_.spammer_burst_fraction;
    ++stats_.burst_posts;
  }
  if (options_.churn_period > 0) {
    const uint64_t epoch = ordinal / options_.churn_period;
    decision.context.worker_epoch = static_cast<uint32_t>(epoch);
    stats_.churn_epochs = epoch;
  }
  if (options_.straggler_fraction > 0.0 &&
      straggler_rng_.NextBernoulli(options_.straggler_fraction)) {
    decision.context.latency_multiplier = options_.straggler_multiplier;
    ++stats_.straggler_posts;
  }
  return decision;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace slade
