// Copyright (c) the SLADE reproduction authors.
//
// A discrete-event crowdsourcing platform simulator standing in for Amazon
// Mechanical Turk (see DESIGN.md §4). Requesters post task bins (HITs);
// simulated workers arrive with pay-sensitive Poisson timing, answer each
// contained atomic task with a probability drawn from the dataset's worker
// model (binmodel/profile_model.h) modulated by per-worker skill, and the
// platform reports answers and completion times. Everything downstream --
// probe calibration, plan execution, the Figure 3 motivation curves -- is
// measured against this simulator.

#ifndef SLADE_SIMULATOR_PLATFORM_H_
#define SLADE_SIMULATOR_PLATFORM_H_

#include <cstdint>
#include <vector>

#include "binmodel/profile_model.h"
#include "common/random.h"
#include "common/result.h"

namespace slade {

/// \brief Simulator configuration.
struct PlatformConfig {
  /// The worker-behaviour model (JellyModel(), SmicModel(), ...).
  DatasetModel model;
  /// RNG seed; two platforms with equal config produce identical histories.
  uint64_t seed = 42;
  /// Per-worker skill spread: each worker's failure probability is scaled
  /// by exp(N(0, skill_sigma)). 0 disables worker heterogeneity.
  double skill_sigma = 0.25;
  /// Size of the simulated worker population (workers are sampled with
  /// replacement per assignment, as on a large marketplace).
  uint32_t population = 10'000;
  /// Fraction of the population that are spammers: they answer uniformly
  /// at random, ignoring the task. Membership is deterministic per worker
  /// id. Used by calibration-robustness tests and the adaptive loop
  /// benchmarks; 0 disables.
  double spammer_fraction = 0.0;
};

/// \brief Per-post modifiers, used by the fault-injection layer
/// (simulator/fault_injector.h) to perturb one bin post without touching
/// the platform's steady-state configuration. The default context
/// reproduces the unperturbed platform exactly.
struct BinPostContext {
  /// Probability that this post's worker spams (answers uniformly at
  /// random) *in addition* to the steady-state spammer population --
  /// models a transient burst of bad actors flooding the marketplace.
  double extra_spammer_fraction = 0.0;
  /// Multiplies the completion time of this post (straggler injection);
  /// overtime is judged on the stretched clock.
  double latency_multiplier = 1.0;
  /// Worker-churn epoch: workers are drawn from an identity space salted
  /// by the epoch, so advancing it replaces the entire population (skills,
  /// spammer membership and worker ids all reshuffle). Epoch 0 is the
  /// original population.
  uint32_t worker_epoch = 0;
};

/// \brief Outcome of collecting one assignment (one worker's pass over a
/// posted bin).
struct AssignmentOutcome {
  /// The worker's boolean answer per contained atomic task.
  std::vector<bool> answers;
  uint32_t worker_id = 0;
};

/// \brief Outcome of posting one bin and collecting `assignments` of it.
struct BinOutcome {
  std::vector<AssignmentOutcome> assignments;
  /// Minutes until the last required assignment arrived.
  double completion_minutes = 0.0;
  /// True iff completion_minutes exceeded the model timeout (the bin is
  /// "overtime": the dotted-line regime of Figure 3).
  bool overtime = false;
};

/// \brief The simulated marketplace.
class Platform {
 public:
  explicit Platform(const PlatformConfig& config);

  /// Posts one bin of `cardinality` at incentive `bin_cost` whose atomic
  /// tasks have the given ground-truth labels, and collects `assignments`
  /// worker passes. `ground_truth.size()` must be between 1 and
  /// `cardinality`. `context` perturbs this post only (fault injection);
  /// the default context is the unperturbed platform.
  Result<BinOutcome> PostBin(uint32_t cardinality, double bin_cost,
                             const std::vector<bool>& ground_truth,
                             int assignments,
                             const BinPostContext& context = {});

  /// Expected per-task answer accuracy the simulator would exhibit for
  /// this (cardinality, cost) -- the analytic model value, exposed so
  /// tests can compare Monte-Carlo estimates against it.
  double ExpectedConfidence(uint32_t cardinality, double bin_cost) const {
    return ModelConfidence(config_.model, cardinality, bin_cost);
  }

  const PlatformConfig& config() const { return config_; }

  /// Total incentives paid to workers so far.
  double total_spent() const { return total_spent_; }
  /// Total bins posted so far.
  uint64_t bins_posted() const { return bins_posted_; }

  /// True iff worker `id` is a spammer (deterministic in (seed, id)).
  bool IsSpammer(uint32_t id) const;

 private:
  /// Skill multiplier of worker `id` (deterministic in (seed, id)).
  double WorkerSkill(uint32_t id) const;

  PlatformConfig config_;
  Xoshiro256 rng_;
  double total_spent_ = 0.0;
  uint64_t bins_posted_ = 0;
};

}  // namespace slade

#endif  // SLADE_SIMULATOR_PLATFORM_H_
