// Copyright (c) the SLADE reproduction authors.
//
// Deterministic fault injection for the simulated platform. Production
// crowdsourcing marketplaces misbehave in ways the paper's model does not
// capture: spam rings flood the worker pool for a while, the workforce
// churns so previously learned worker reputations go stale, some HITs sit
// unclaimed for hours (stragglers), and the platform itself has transient
// outage windows. The injector turns those scenarios into a deterministic
// per-bin schedule: every bin-post attempt asks NextBin() for its fate,
// which is either "platform down" (the caller retries later; the attempt
// still advances the schedule, so outage windows pass) or a BinPostContext
// perturbing that one post (simulator/platform.h).
//
// Determinism: the schedule is a pure function of (options, attempt
// ordinal), so a single-threaded dispatcher replays identically for a
// given seed. Under a multi-threaded dispatcher the ordinal assignment
// depends on thread interleaving, as on a real marketplace.

#ifndef SLADE_SIMULATOR_FAULT_INJECTOR_H_
#define SLADE_SIMULATOR_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/random.h"
#include "simulator/platform.h"

namespace slade {

/// \brief Fault scenario knobs. All periods/lengths count bin-post
/// attempts; a period of 0 disables that fault family. The defaults
/// disable everything (an all-default FaultOptions injects nothing).
struct FaultOptions {
  /// Spammer bursts: in every window of `spammer_burst_period` attempts,
  /// the first `spammer_burst_length` attempts see an extra
  /// `spammer_burst_fraction` probability of a spammer answering.
  uint64_t spammer_burst_period = 0;
  uint64_t spammer_burst_length = 0;
  double spammer_burst_fraction = 0.5;
  /// Worker churn: the platform's worker-identity epoch advances every
  /// `churn_period` attempts, replacing the entire simulated population.
  uint64_t churn_period = 0;
  /// Stragglers: each attempt independently has `straggler_fraction`
  /// probability of a `straggler_multiplier`x completion-time stretch
  /// (the dotted-line overtime regime of Figure 3).
  double straggler_fraction = 0.0;
  double straggler_multiplier = 20.0;
  /// Transient platform outages: in every window of `outage_period`
  /// attempts, the first `outage_length` attempts fail ("platform down").
  uint64_t outage_period = 0;
  uint64_t outage_length = 0;
  /// Seeds the straggler coin; everything else is counter-driven.
  uint64_t seed = 0x5EEDFA17ULL;

  /// True iff any fault family is enabled.
  bool any() const {
    return spammer_burst_period > 0 || churn_period > 0 ||
           straggler_fraction > 0.0 || outage_period > 0;
  }

  /// One-line human-readable summary ("none" when nothing is enabled).
  std::string ToString() const;
};

/// \brief Lifetime counters, readable at any time via stats().
struct FaultStats {
  uint64_t attempts = 0;         ///< NextBin() calls
  uint64_t outages = 0;          ///< attempts that hit an outage window
  uint64_t burst_posts = 0;      ///< posts inside a spammer burst
  uint64_t straggler_posts = 0;  ///< posts with stretched latency
  uint64_t churn_epochs = 0;     ///< population replacements so far
};

/// \brief The fault schedule. Thread-safe: concurrent dispatcher threads
/// may call NextBin(); each call consumes one attempt ordinal.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultOptions& options);

  /// Fate of the next bin-post attempt.
  struct Decision {
    /// True: the platform is down for this attempt; the caller should
    /// retry (a later attempt falls past the outage window). The context
    /// is meaningless when set.
    bool outage = false;
    BinPostContext context;
  };

  Decision NextBin();

  FaultStats stats() const;
  const FaultOptions& options() const { return options_; }

 private:
  const FaultOptions options_;
  mutable std::mutex mutex_;
  uint64_t attempt_ = 0;
  Xoshiro256 straggler_rng_;
  FaultStats stats_;
};

}  // namespace slade

#endif  // SLADE_SIMULATOR_FAULT_INJECTOR_H_
