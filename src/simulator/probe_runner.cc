#include "simulator/probe_runner.h"

namespace slade {

Result<std::vector<ProbeObservation>> RunProbes(Platform& platform,
                                                const ProbePlan& plan) {
  if (plan.cardinalities.empty()) {
    return Status::InvalidArgument("probe plan needs cardinalities");
  }
  if (plan.bins_per_cardinality == 0 || plan.assignments_per_bin < 1) {
    return Status::InvalidArgument("probe plan needs positive volumes");
  }
  Xoshiro256 rng(plan.seed);
  std::vector<ProbeObservation> observations;
  observations.reserve(plan.cardinalities.size());

  for (uint32_t l : plan.cardinalities) {
    const double cost = ModelBinCost(platform.config().model, l);
    ProbeObservation obs;
    obs.cardinality = l;
    obs.bin_cost = cost;
    for (uint32_t b = 0; b < plan.bins_per_cardinality; ++b) {
      std::vector<bool> truth(l);
      for (uint32_t i = 0; i < l; ++i) {
        truth[i] = rng.NextBernoulli(plan.positive_rate);
      }
      SLADE_ASSIGN_OR_RETURN(
          BinOutcome outcome,
          platform.PostBin(l, cost, truth, plan.assignments_per_bin));
      for (const AssignmentOutcome& assignment : outcome.assignments) {
        for (uint32_t i = 0; i < l; ++i) {
          ++obs.total;
          if (assignment.answers[i] == truth[i]) ++obs.correct;
        }
      }
    }
    observations.push_back(obs);
  }
  return observations;
}

}  // namespace slade
