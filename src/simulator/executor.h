// Copyright (c) the SLADE reproduction authors.
// End-to-end execution of a decomposition plan on the simulated platform.

#ifndef SLADE_SIMULATOR_EXECUTOR_H_
#define SLADE_SIMULATOR_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "binmodel/task.h"
#include "simulator/platform.h"
#include "solver/plan.h"

namespace slade {

/// \brief Measured outcome of executing a plan.
///
/// The paper's reliability target is "no false negative": a positive atomic
/// task must collect at least one "yes" across its assigned bins ("any
/// image with at least one yes will be further scrutinised", Example 1).
/// The executor therefore reports the empirical per-positive-task hit rate
/// alongside the spend.
struct ExecutionReport {
  /// Fraction of ground-truth-positive atomic tasks that received at least
  /// one positive answer (the empirical counterpart of Definition 2).
  double positive_recall = 0.0;
  /// Number of ground-truth-positive atomic tasks.
  uint64_t positives = 0;
  /// Positives that were missed by every assigned bin (false negatives).
  uint64_t false_negatives = 0;
  /// Total incentives paid (== plan cost, every copy is one paid worker).
  double total_cost = 0.0;
  /// Bin instances posted.
  uint64_t bins_posted = 0;
  /// Bins that exceeded the platform timeout.
  uint64_t overtime_bins = 0;
  /// Per-task flag: true iff the task collected >= 1 positive answer
  /// (only meaningful for positive tasks).
  std::vector<bool> detected;
};

/// \brief Executes `plan` against `platform`.
///
/// `ground_truth[i]` is the true label of atomic task i; `profile` supplies
/// the incentive cost per posted bin. Each placement copy is posted as one
/// single-assignment HIT (the plan already encodes redundancy as explicit
/// copies).
Result<ExecutionReport> ExecutePlan(Platform& platform,
                                    const DecompositionPlan& plan,
                                    const BinProfile& profile,
                                    const std::vector<bool>& ground_truth);

}  // namespace slade

#endif  // SLADE_SIMULATOR_EXECUTOR_H_
