#include "common/csv.h"

#include <cstdio>

namespace slade {

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WriteRow(header);
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.is_open()) return Status::IOError("CSV writer not open");
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(cells[i]);
  }
  out_ << '\n';
  if (!out_.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  return WriteRow(cells);
}

Status CsvWriter::Close() {
  if (!out_.is_open()) return Status::IOError("CSV writer not open");
  out_.close();
  if (out_.fail()) return Status::IOError("CSV close failed");
  return Status::OK();
}

}  // namespace slade
