#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace slade {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& key,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(key);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::string sep;
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c], '-') + "  ";
  }
  os << sep << "\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace slade
