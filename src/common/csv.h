// Copyright (c) the SLADE reproduction authors.
// Tiny CSV writer so benchmark harnesses can optionally dump machine-readable
// series next to the human-readable tables.

#ifndef SLADE_COMMON_CSV_H_
#define SLADE_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace slade {

/// \brief Writes rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Fails with IOError if the file cannot be opened.
  Status Open(const std::string& path,
              const std::vector<std::string>& header);

  /// Appends one row of cells.
  Status WriteRow(const std::vector<std::string>& cells);

  /// Appends a row of doubles formatted with %.6g.
  Status WriteRow(const std::vector<double>& values);

  /// Flushes and closes the file; further writes fail.
  Status Close();

  bool is_open() const { return out_.is_open(); }

 private:
  static std::string Escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace slade

#endif  // SLADE_COMMON_CSV_H_
