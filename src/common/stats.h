// Copyright (c) the SLADE reproduction authors.
// Descriptive statistics helpers for benchmarks, calibration and tests.

#ifndef SLADE_COMMON_STATS_H_
#define SLADE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace slade {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by the simulator to track
/// per-bin empirical confidence and by benchmark harnesses to aggregate
/// repeated runs.
class OnlineStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-safe combine,
  /// Chan et al.).
  void Merge(const OnlineStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Population variance (divide by n).
  double variance() const;
  /// Sample variance (divide by n-1); 0 when fewer than two observations.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Arithmetic mean of `xs`; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Sample standard deviation of `xs`; 0 for fewer than 2 values.
double SampleStddev(const std::vector<double>& xs);

/// \brief p-th percentile (p in [0, 100]) using linear interpolation
/// between closest ranks. Sorts a copy; 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// \brief Two-sided Wilson score interval half-width for a Bernoulli
/// proportion estimate `p_hat` over `n` trials at ~95% confidence.
/// Used by simulator statistical tests to bound Monte-Carlo noise.
double WilsonHalfWidth95(double p_hat, size_t n);

}  // namespace slade

#endif  // SLADE_COMMON_STATS_H_
