// Copyright (c) the SLADE reproduction authors.
// Deterministic, fast PRNG for simulation and workload generation.

#ifndef SLADE_COMMON_RANDOM_H_
#define SLADE_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace slade {

/// \brief SplitMix64: used to seed the main generator and for cheap
/// stateless hashing of seeds.
///
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** 1.0 by Blackman & Vigna: the library's workhorse
/// generator. Deterministic across platforms, 2^256-1 period, passes BigCrush.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used with
/// <random> distributions, though the library ships its own distribution
/// implementations (distributions.h) for cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64 (the seeding
  /// procedure recommended by the xoshiro authors).
  explicit Xoshiro256(uint64_t seed = 0x5eedbeefcafef00dULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace slade

#endif  // SLADE_COMMON_RANDOM_H_
