#include "common/status.h"

namespace slade {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(new State{code, std::move(msg)}) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace slade
