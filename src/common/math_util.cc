#include "common/math_util.h"

namespace slade {

uint64_t SaturatingLcm(uint64_t a, uint64_t b, uint64_t cap) {
  if (a == 0 || b == 0) return 0;
  const uint64_t g = Gcd(a, b);
  const uint64_t a_over_g = a / g;
  // a_over_g * b overflows or exceeds cap?
  if (a_over_g > cap / b) return cap;
  const uint64_t lcm = a_over_g * b;
  return lcm > cap ? cap : lcm;
}

}  // namespace slade
