#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace slade {

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), counts_(num_buckets == 0 ? 1 : num_buckets, 0) {}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  size_t idx = 0;
  if (span > 0) {
    double frac = (x - lo_) / span;
    if (frac < 0) frac = 0;
    if (frac >= 1) frac = std::nextafter(1.0, 0.0);
    idx = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::ToAscii(size_t width) const {
  size_t max_count = 1;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char buf[96];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bars = counts_[i] * width / max_count;
    std::snprintf(buf, sizeof(buf), "[%8.4f, %8.4f) %8zu ",
                  bucket_lo(i), bucket_hi(i), counts_[i]);
    out += buf;
    out += std::string(bars, '#');
    out += '\n';
  }
  return out;
}

}  // namespace slade
