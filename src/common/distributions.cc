#include "common/distributions.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace slade {

std::string UniformDistribution::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Uniform(%g, %g)", lo_, hi_);
  return buf;
}

double NormalDistribution::Sample(Xoshiro256& rng) const {
  // Marsaglia polar method; the second variate is discarded to keep each
  // call stateless (determinism across call sites matters more here than
  // halving the RNG draws).
  double u, v, s;
  do {
    u = rng.NextDouble(-1.0, 1.0);
    v = rng.NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mu_ + sigma_ * (u * factor);
}

std::string NormalDistribution::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Normal(%g, %g)", mu_, sigma_);
  return buf;
}

double ParetoDistribution::Sample(Xoshiro256& rng) const {
  // Inverse transform: x_m / U^{1/alpha}, U ~ Uniform(0,1].
  double u = 1.0 - rng.NextDouble();  // in (0, 1]
  return x_m_ / std::pow(u, 1.0 / alpha_);
}

double ParetoDistribution::Mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_m_ / (alpha_ - 1.0);
}

std::string ParetoDistribution::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Pareto(%g, %g)", x_m_, alpha_);
  return buf;
}

double ExponentialDistribution::Sample(Xoshiro256& rng) const {
  double u = 1.0 - rng.NextDouble();  // in (0, 1]
  return -std::log(u) / lambda_;
}

std::string ExponentialDistribution::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Exponential(%g)", lambda_);
  return buf;
}

double ClampedDistribution::Sample(Xoshiro256& rng) const {
  double x = inner_->Sample(rng);
  if (x < lo_) return lo_;
  if (x > hi_) return hi_;
  return x;
}

std::string ClampedDistribution::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Clamp(%s, [%g, %g])",
                inner_->ToString().c_str(), lo_, hi_);
  return buf;
}

Result<std::shared_ptr<RealDistribution>> MakeDistribution(
    const std::string& spec) {
  auto colon = spec.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("distribution spec missing ':': " + spec);
  }
  const std::string name = spec.substr(0, colon);
  const std::string args = spec.substr(colon + 1);
  double a = 0.0, b = 0.0;
  const int matched =
      std::sscanf(args.c_str(), "%lf,%lf", &a, &b);
  if (name == "uniform") {
    if (matched != 2) {
      return Status::InvalidArgument("uniform needs LO,HI: " + spec);
    }
    if (a >= b) return Status::InvalidArgument("uniform needs LO < HI");
    return std::shared_ptr<RealDistribution>(new UniformDistribution(a, b));
  }
  if (name == "normal") {
    if (matched != 2) {
      return Status::InvalidArgument("normal needs MU,SIGMA: " + spec);
    }
    if (b < 0) return Status::InvalidArgument("normal needs SIGMA >= 0");
    return std::shared_ptr<RealDistribution>(new NormalDistribution(a, b));
  }
  if (name == "pareto") {
    if (matched != 2) {
      return Status::InvalidArgument("pareto needs XM,ALPHA: " + spec);
    }
    if (a <= 0 || b <= 0) {
      return Status::InvalidArgument("pareto needs XM, ALPHA > 0");
    }
    return std::shared_ptr<RealDistribution>(new ParetoDistribution(a, b));
  }
  if (name == "exponential") {
    if (matched < 1 || a <= 0) {
      return Status::InvalidArgument("exponential needs LAMBDA > 0: " + spec);
    }
    return std::shared_ptr<RealDistribution>(
        new ExponentialDistribution(a));
  }
  return Status::InvalidArgument("unknown distribution: " + name);
}

std::vector<double> SampleClamped(const RealDistribution& dist, size_t n,
                                  double lo, double hi, Xoshiro256& rng) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = dist.Sample(rng);
    if (x < lo) x = lo;
    if (x > hi) x = hi;
    out.push_back(x);
  }
  return out;
}

}  // namespace slade
