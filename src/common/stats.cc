#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace slade {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double OnlineStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double WilsonHalfWidth95(double p_hat, size_t n) {
  if (n == 0) return 1.0;
  const double z = 1.959963985;  // Phi^{-1}(0.975)
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double half =
      (z / denom) * std::sqrt(p_hat * (1.0 - p_hat) / nn + z2 / (4 * nn * nn));
  return half;
}

}  // namespace slade
