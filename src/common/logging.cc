#include "common/logging.h"

#include <atomic>

namespace slade {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void Logger::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (Logger::IsEnabled(level_) || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace slade
