// Copyright (c) the SLADE reproduction authors.

#ifndef SLADE_COMMON_STOPWATCH_H_
#define SLADE_COMMON_STOPWATCH_H_

#include <chrono>

namespace slade {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses
/// to report algorithm running times (the paper's Figures 6c/d/g/h/k/l,
/// 7b/d, 8).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace slade

#endif  // SLADE_COMMON_STOPWATCH_H_
