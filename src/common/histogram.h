// Copyright (c) the SLADE reproduction authors.

#ifndef SLADE_COMMON_HISTOGRAM_H_
#define SLADE_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace slade {

/// \brief Fixed-range equal-width histogram. Used by tests and example
/// programs to summarize threshold distributions and measured reliability.
class Histogram {
 public:
  /// Buckets the range [lo, hi] into `num_buckets` equal-width bins.
  /// Values outside the range are clamped into the first/last bucket.
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double x);

  size_t total_count() const { return total_; }
  size_t bucket_count(size_t i) const { return counts_.at(i); }
  size_t num_buckets() const { return counts_.size(); }

  /// Lower edge of bucket `i`.
  double bucket_lo(size_t i) const;
  /// Upper edge of bucket `i`.
  double bucket_hi(size_t i) const;

  /// Renders an ASCII bar chart, `width` characters for the largest bucket.
  std::string ToAscii(size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace slade

#endif  // SLADE_COMMON_HISTOGRAM_H_
