// Copyright (c) the SLADE reproduction authors.
// A small fixed-size thread pool. Used by the baseline solver to run
// independent chunk CIPs in parallel (each chunk is a self-contained
// LP + rounding problem; see baseline_solver.h).

#ifndef SLADE_COMMON_THREAD_POOL_H_
#define SLADE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace slade {

/// \brief Fixed-size worker pool executing `std::function<void()>` jobs.
///
/// Deliberately minimal: no futures, no work stealing. Callers that need
/// results write into pre-sized slots (one per job), so no synchronization
/// beyond Wait() is required on the result side.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Never blocks (unbounded queue).
  void Submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// `std::thread::hardware_concurrency()` with a floor of 1.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs `fn(i)` for i in [0, count) across `pool` (or inline when
/// `pool` is null), blocking until all complete.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace slade

#endif  // SLADE_COMMON_THREAD_POOL_H_
