#include "common/thread_pool.h"

#include <algorithm>

namespace slade {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(num_threads, 1);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace slade
