// Copyright (c) the SLADE reproduction authors.
// Minimal leveled logging + CHECK macros, RocksDB/Arrow flavoured.

#ifndef SLADE_COMMON_LOGGING_H_
#define SLADE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace slade {

/// \brief Severity levels for the logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Process-wide logging configuration.
class Logger {
 public:
  /// Sets the minimum level that will be emitted. Defaults to kInfo.
  static void SetMinLevel(LogLevel level);
  static LogLevel min_level();

  /// True iff a message at `level` would be emitted.
  static bool IsEnabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(min_level());
  }
};

namespace internal {

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the log level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace slade

#define SLADE_LOG_INTERNAL(level)                                \
  ::slade::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define SLADE_LOG(severity)                                          \
  (!::slade::Logger::IsEnabled(::slade::LogLevel::k##severity))      \
      ? (void)0                                                      \
      : (void)(SLADE_LOG_INTERNAL(::slade::LogLevel::k##severity)    \
               << "")

// Stream-style logging: SLADE_DLOG() << "x = " << x;
#define SLADE_DLOG() SLADE_LOG_INTERNAL(::slade::LogLevel::kDebug)
#define SLADE_ILOG() SLADE_LOG_INTERNAL(::slade::LogLevel::kInfo)
#define SLADE_WLOG() SLADE_LOG_INTERNAL(::slade::LogLevel::kWarning)
#define SLADE_ELOG() SLADE_LOG_INTERNAL(::slade::LogLevel::kError)

/// Internal invariant check: always on (used in library internals where a
/// violation is a programming error, not a user error).
#define SLADE_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::slade::internal::LogMessage(::slade::LogLevel::kFatal,          \
                                    __FILE__, __LINE__)                 \
              .stream()                                                 \
          << "Check failed: " #cond;                                    \
    }                                                                   \
  } while (false)

#define SLADE_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::slade::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                    \
      ::slade::internal::LogMessage(::slade::LogLevel::kFatal,          \
                                    __FILE__, __LINE__)                 \
              .stream()                                                 \
          << "Check failed (status): " << _st.ToString();               \
    }                                                                   \
  } while (false)

#define SLADE_DCHECK(cond) assert(cond)

#endif  // SLADE_COMMON_LOGGING_H_
