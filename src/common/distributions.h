// Copyright (c) the SLADE reproduction authors.
// Deterministic sampling distributions used by the workload generators and
// the platform simulator. We implement these ourselves (instead of <random>)
// so that a given seed produces the same stream on every platform/compiler.

#ifndef SLADE_COMMON_DISTRIBUTIONS_H_
#define SLADE_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace slade {

/// \brief Interface for a real-valued sampling distribution.
class RealDistribution {
 public:
  virtual ~RealDistribution() = default;

  /// Draws one sample using `rng`.
  virtual double Sample(Xoshiro256& rng) const = 0;

  /// Expected value of the distribution (used by statistical tests).
  virtual double Mean() const = 0;

  /// Human-readable description, e.g. "Normal(0.9, 0.03)".
  virtual std::string ToString() const = 0;
};

/// \brief Uniform distribution on [lo, hi).
class UniformDistribution final : public RealDistribution {
 public:
  UniformDistribution(double lo, double hi) : lo_(lo), hi_(hi) {}

  double Sample(Xoshiro256& rng) const override {
    return rng.NextDouble(lo_, hi_);
  }
  double Mean() const override { return (lo_ + hi_) / 2.0; }
  std::string ToString() const override;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// \brief Normal distribution N(mu, sigma^2), sampled via the Marsaglia
/// polar method (deterministic; no cached state so each call is independent
/// given the RNG stream position).
class NormalDistribution final : public RealDistribution {
 public:
  NormalDistribution(double mu, double sigma) : mu_(mu), sigma_(sigma) {}

  double Sample(Xoshiro256& rng) const override;
  double Mean() const override { return mu_; }
  std::string ToString() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// \brief Pareto (type I) heavy-tailed distribution with scale `x_m` and
/// shape `alpha`. Used for the paper's "heavy tailed" threshold experiments.
class ParetoDistribution final : public RealDistribution {
 public:
  ParetoDistribution(double x_m, double alpha) : x_m_(x_m), alpha_(alpha) {}

  double Sample(Xoshiro256& rng) const override;
  double Mean() const override;
  std::string ToString() const override;

  double x_m() const { return x_m_; }
  double alpha() const { return alpha_; }

 private:
  double x_m_;
  double alpha_;
};

/// \brief Exponential distribution with rate `lambda` (mean 1/lambda).
/// Used for Poisson worker-arrival inter-arrival times in the simulator.
class ExponentialDistribution final : public RealDistribution {
 public:
  explicit ExponentialDistribution(double lambda) : lambda_(lambda) {}

  double Sample(Xoshiro256& rng) const override;
  double Mean() const override { return 1.0 / lambda_; }
  std::string ToString() const override;

  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// \brief Wraps any distribution and clamps samples into [lo, hi].
///
/// The paper draws reliability thresholds from Normal(0.9, 0.03); a raw
/// normal can produce t >= 1 (infinite theta) or t <= 0, so experiment code
/// always samples thresholds through a clamp.
class ClampedDistribution final : public RealDistribution {
 public:
  ClampedDistribution(std::shared_ptr<const RealDistribution> inner,
                      double lo, double hi)
      : inner_(std::move(inner)), lo_(lo), hi_(hi) {}

  double Sample(Xoshiro256& rng) const override;
  double Mean() const override { return inner_->Mean(); }  // approximate
  std::string ToString() const override;

 private:
  std::shared_ptr<const RealDistribution> inner_;
  double lo_;
  double hi_;
};

/// \brief Parses a distribution spec string.
///
/// Accepted forms: "uniform:LO,HI", "normal:MU,SIGMA", "pareto:XM,ALPHA",
/// "exponential:LAMBDA". Used by benchmark/example CLIs.
Result<std::shared_ptr<RealDistribution>> MakeDistribution(
    const std::string& spec);

/// \brief Draws `n` samples from `dist` clamped to [lo, hi].
std::vector<double> SampleClamped(const RealDistribution& dist, size_t n,
                                  double lo, double hi, Xoshiro256& rng);

}  // namespace slade

#endif  // SLADE_COMMON_DISTRIBUTIONS_H_
