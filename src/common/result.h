// Copyright (c) the SLADE reproduction authors.
// `Result<T>`: a value or an error Status, in the style of arrow::Result.

#ifndef SLADE_COMMON_RESULT_H_
#define SLADE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace slade {

/// \brief Holds either a successfully computed `T` or the `Status`
/// describing why it could not be computed.
///
/// Usage:
/// \code
///   Result<Plan> r = solver.Solve(task);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    assert(!this->status().ok() && "Result constructed from OK status");
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value; must only be called when `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Alias for ValueOrDie, matching arrow::Result spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if ok, otherwise `alternative`.
  T ValueOr(T alternative) const& {
    return ok() ? ValueOrDie() : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace slade

/// Assigns the value of a `Result` expression to `lhs`, or returns its error
/// Status from the enclosing function.
#define SLADE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define SLADE_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define SLADE_ASSIGN_OR_RETURN_CONCAT(x, y) SLADE_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define SLADE_ASSIGN_OR_RETURN(lhs, rexpr) \
  SLADE_ASSIGN_OR_RETURN_IMPL(             \
      SLADE_ASSIGN_OR_RETURN_CONCAT(_slade_result_, __LINE__), lhs, rexpr)

#endif  // SLADE_COMMON_RESULT_H_
