// Copyright (c) the SLADE reproduction authors.
// Exception-free error handling in the style of Apache Arrow / RocksDB.

#ifndef SLADE_COMMON_STATUS_H_
#define SLADE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace slade {

/// \brief Machine-readable category for a `Status`.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kInfeasible = 5,       ///< No feasible decomposition plan exists.
  kResourceExhausted = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kIOError = 9,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK, or a code plus message.
///
/// The OK state is represented by a null state pointer, so `Status::OK()`
/// is cheap to construct, copy and test. All library entry points that can
/// fail return `Status` (or `Result<T>`, see result.h); the library never
/// throws.
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  /// Creates a status with the given code and message. `code` must not be
  /// `StatusCode::kOk`; use the default constructor (or `OK()`) for success.
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  /// The status code (`kOk` when `ok()`).
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// The error message; empty when `ok()`.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool Equals(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK; this keeps the success path allocation-free.
  std::unique_ptr<State> state_;
};

inline bool operator==(const Status& a, const Status& b) { return a.Equals(b); }
inline bool operator!=(const Status& a, const Status& b) {
  return !a.Equals(b);
}

}  // namespace slade

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function.
#define SLADE_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::slade::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // SLADE_COMMON_STATUS_H_
