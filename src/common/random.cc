#include "common/random.h"

namespace slade {

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace slade
