// Copyright (c) the SLADE reproduction authors.
// Small numeric helpers shared across the library.

#ifndef SLADE_COMMON_MATH_UTIL_H_
#define SLADE_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <numeric>

namespace slade {

/// Tolerance used when comparing reliability/log-reliability quantities.
/// The paper's constraint `Rel >= t` is evaluated in the log domain where
/// rounding error accumulates across a handful of additions; 1e-9 is far
/// below any meaningful reliability difference.
inline constexpr double kRelEps = 1e-9;

/// \brief The log-domain reduction of a probability: `-ln(1 - p)`
/// (Equation 2 of the paper). Defined for p in [0, 1); returns +inf at 1.
inline double LogReduction(double p) {
  // -log1p(-p) is accurate for p near 0 and near 1.
  return -std::log1p(-p);
}

/// \brief Inverse of LogReduction: probability `1 - e^{-theta}`.
inline double InverseLogReduction(double theta) {
  // -expm1(-theta) = 1 - e^{-theta}, accurate for small theta.
  return -std::expm1(-theta);
}

/// \brief Greatest common divisor of two positive integers.
inline uint64_t Gcd(uint64_t a, uint64_t b) { return std::gcd(a, b); }

/// Default saturation cap for SaturatingLcm. Named so callers that inline
/// the LCM update (the OPQ builder's fast path) saturate at exactly the
/// same value.
inline constexpr uint64_t kSaturatingLcmCap = UINT64_C(1) << 62;

/// \brief Least common multiple with saturation: returns `cap` if the true
/// LCM would exceed `cap`. The OPQ assigns LCM(..) atomic tasks per
/// combination, so values beyond the task count are never useful and this
/// guards against overflow for cardinalities up to 64.
uint64_t SaturatingLcm(uint64_t a, uint64_t b,
                       uint64_t cap = kSaturatingLcmCap);

/// \brief True iff |a - b| <= eps.
inline bool ApproxEq(double a, double b, double eps = kRelEps) {
  return std::fabs(a - b) <= eps;
}

/// \brief True iff a >= b - eps (tolerant greater-or-equal).
inline bool ApproxGe(double a, double b, double eps = kRelEps) {
  return a >= b - eps;
}

/// \brief Ceiling of a/b for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// \brief Mixes `value` into a running 64-bit hash `seed` (boost-style).
/// Used for cheap structural fingerprints (e.g. OpqCache profile keys);
/// not cryptographic.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + UINT64_C(0x9e3779b97f4a7c15) + (seed << 6) +
                 (seed >> 2));
}

}  // namespace slade

#endif  // SLADE_COMMON_MATH_UTIL_H_
