// Copyright (c) the SLADE reproduction authors.
// Fixed-width table output: the benchmark harnesses print the same rows and
// series the paper's figures plot, in a grep-friendly format.

#ifndef SLADE_COMMON_TABLE_PRINTER_H_
#define SLADE_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace slade {

/// \brief Accumulates rows of string cells and prints them column-aligned.
///
/// \code
///   TablePrinter t({"t", "Greedy", "OPQ-Based", "Baseline"});
///   t.AddRow({"0.9", "612.4", "583.1", "701.9"});
///   t.Print(std::cout);
/// \endcode
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  void AddRow(const std::string& key, const std::vector<double>& values,
              int precision = 4);

  /// Writes the aligned table (header, separator, rows).
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double with fixed precision, trimming to a compact form.
  static std::string FormatDouble(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints a section banner ("== Figure 6a: ... ==") so figure output
/// is easy to locate in bench_output.txt.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace slade

#endif  // SLADE_COMMON_TABLE_PRINTER_H_
