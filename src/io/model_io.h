// Copyright (c) the SLADE reproduction authors.
// File formats for bin profiles, threshold vectors and decomposition plans,
// shared by the CLI tool and downstream pipelines.

#ifndef SLADE_IO_MODEL_IO_H_
#define SLADE_IO_MODEL_IO_H_

#include <string>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/plan.h"

namespace slade {

/// \brief Loads a bin profile from CSV with header
/// `cardinality,confidence,cost` (rows in any order, cardinalities must
/// form 1..m).
Result<BinProfile> LoadBinProfileCsv(const std::string& path);

/// \brief Writes a bin profile in the same format.
Status SaveBinProfileCsv(const BinProfile& profile, const std::string& path);

/// \brief Loads reliability thresholds from CSV: header `threshold`, one
/// value per row (task ids are the row order).
Result<CrowdsourcingTask> LoadThresholdsCsv(const std::string& path);

/// \brief Writes thresholds in the same format.
Status SaveThresholdsCsv(const CrowdsourcingTask& task,
                         const std::string& path);

/// \brief Writes a plan as CSV with header `cardinality,copies,tasks`
/// where `tasks` is a semicolon-joined id list.
Status SavePlanCsv(const DecompositionPlan& plan, const std::string& path);

/// \brief Reads a plan written by SavePlanCsv.
Result<DecompositionPlan> LoadPlanCsv(const std::string& path);

}  // namespace slade

#endif  // SLADE_IO_MODEL_IO_H_
