// Copyright (c) the SLADE reproduction authors.
// File formats for bin profiles, threshold vectors and decomposition plans,
// shared by the CLI tool and downstream pipelines.

#ifndef SLADE_IO_MODEL_IO_H_
#define SLADE_IO_MODEL_IO_H_

#include <string>
#include <vector>

#include "binmodel/task.h"
#include "binmodel/task_bin.h"
#include "common/result.h"
#include "solver/plan.h"

namespace slade {

/// \brief Loads a bin profile from CSV with header
/// `cardinality,confidence,cost` (rows in any order, cardinalities must
/// form 1..m).
Result<BinProfile> LoadBinProfileCsv(const std::string& path);

/// \brief Writes a bin profile in the same format.
Status SaveBinProfileCsv(const BinProfile& profile, const std::string& path);

/// \brief Loads reliability thresholds from CSV: header `threshold`, one
/// value per row (task ids are the row order).
Result<CrowdsourcingTask> LoadThresholdsCsv(const std::string& path);

/// \brief Writes thresholds in the same format.
Status SaveThresholdsCsv(const CrowdsourcingTask& task,
                         const std::string& path);

/// \brief Loads a batch workload from CSV with header `task,threshold`:
/// one row per atomic task, `task` a 0-based crowdsourcing-task index.
/// Rows for the same task must be consecutive and indices must start at 0
/// and increase by at most 1 (so the file is unambiguous and the batch
/// order is the file order).
Result<std::vector<CrowdsourcingTask>> LoadBatchWorkloadCsv(
    const std::string& path);

/// \brief Writes a batch workload in the same format.
Status SaveBatchWorkloadCsv(const std::vector<CrowdsourcingTask>& tasks,
                            const std::string& path);

/// \brief One arrival in a timed (streaming) workload: a requester submits
/// one or more crowdsourcing tasks at `arrival_ms` (milliseconds from the
/// start of the replay).
struct TimedSubmission {
  double arrival_ms = 0.0;
  std::string requester;
  /// Idempotency id (see durability/hooks.h). Not part of the CSV format:
  /// ingestion sources stamp it deterministically at replay time, so the
  /// same tape replays with the same ids (empty = anonymous).
  std::string submission_id;
  std::vector<CrowdsourcingTask> tasks;

  size_t num_atomic_tasks() const {
    size_t n = 0;
    for (const CrowdsourcingTask& t : tasks) n += t.size();
    return n;
  }
};

/// \brief Loads a timed workload from CSV with header
/// `arrival_ms,requester,task,threshold`: one row per atomic task.
/// Consecutive rows with the same (arrival_ms, requester) form one
/// submission; within a submission, `task` is a 0-based crowdsourcing-task
/// index that starts at 0 and increases by at most 1 (the batch-workload
/// rule). Arrival times must be non-decreasing.
Result<std::vector<TimedSubmission>> LoadTimedWorkloadCsv(
    const std::string& path);

/// \brief Writes a timed workload in the same format. Fails if two
/// consecutive submissions share both arrival_ms and requester: the format
/// keys submission boundaries on that pair changing, so such neighbours
/// would merge on reload.
Status SaveTimedWorkloadCsv(const std::vector<TimedSubmission>& submissions,
                            const std::string& path);

/// \brief Writes a plan as CSV with header `cardinality,copies,tasks`
/// where `tasks` is a semicolon-joined id list.
Status SavePlanCsv(const DecompositionPlan& plan, const std::string& path);

/// \brief Reads a plan written by SavePlanCsv.
Result<DecompositionPlan> LoadPlanCsv(const std::string& path);

}  // namespace slade

#endif  // SLADE_IO_MODEL_IO_H_
