#include "io/model_io.h"

#include <algorithm>

#include "common/csv.h"
#include "io/csv_reader.h"

namespace slade {

namespace {

Status CheckHeader(const std::vector<std::vector<std::string>>& rows,
                   const std::vector<std::string>& expected,
                   const std::string& what) {
  if (rows.empty()) {
    return Status::InvalidArgument(what + ": empty file");
  }
  if (rows.front() != expected) {
    std::string want;
    for (size_t i = 0; i < expected.size(); ++i) {
      want += (i ? "," : "") + expected[i];
    }
    return Status::InvalidArgument(what + ": expected header '" + want +
                                   "'");
  }
  return Status::OK();
}

}  // namespace

Result<BinProfile> LoadBinProfileCsv(const std::string& path) {
  SLADE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  SLADE_RETURN_NOT_OK(
      CheckHeader(rows, {"cardinality", "confidence", "cost"}, path));
  std::vector<TaskBin> bins;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 3) {
      return Status::InvalidArgument(path + ": row " + std::to_string(r) +
                                     " needs 3 cells");
    }
    TaskBin bin;
    SLADE_ASSIGN_OR_RETURN(uint64_t l, ParseUint(rows[r][0]));
    SLADE_ASSIGN_OR_RETURN(bin.confidence, ParseDouble(rows[r][1]));
    SLADE_ASSIGN_OR_RETURN(bin.cost, ParseDouble(rows[r][2]));
    bin.cardinality = static_cast<uint32_t>(l);
    bins.push_back(bin);
  }
  std::sort(bins.begin(), bins.end(),
            [](const TaskBin& a, const TaskBin& b) {
              return a.cardinality < b.cardinality;
            });
  return BinProfile::Create(std::move(bins));
}

Status SaveBinProfileCsv(const BinProfile& profile,
                         const std::string& path) {
  CsvWriter writer;
  SLADE_RETURN_NOT_OK(
      writer.Open(path, {"cardinality", "confidence", "cost"}));
  char buf[64];
  for (uint32_t l = 1; l <= profile.max_cardinality(); ++l) {
    const TaskBin& bin = profile.bin(l);
    std::vector<std::string> cells;
    cells.push_back(std::to_string(l));
    std::snprintf(buf, sizeof(buf), "%.10g", bin.confidence);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.10g", bin.cost);
    cells.emplace_back(buf);
    SLADE_RETURN_NOT_OK(writer.WriteRow(cells));
  }
  return writer.Close();
}

Result<CrowdsourcingTask> LoadThresholdsCsv(const std::string& path) {
  SLADE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  SLADE_RETURN_NOT_OK(CheckHeader(rows, {"threshold"}, path));
  std::vector<double> thresholds;
  thresholds.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 1) {
      return Status::InvalidArgument(path + ": row " + std::to_string(r) +
                                     " needs 1 cell");
    }
    SLADE_ASSIGN_OR_RETURN(double t, ParseDouble(rows[r][0]));
    thresholds.push_back(t);
  }
  return CrowdsourcingTask::FromThresholds(std::move(thresholds));
}

Status SaveThresholdsCsv(const CrowdsourcingTask& task,
                         const std::string& path) {
  CsvWriter writer;
  SLADE_RETURN_NOT_OK(writer.Open(path, {"threshold"}));
  char buf[64];
  for (size_t i = 0; i < task.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.10g",
                  task.threshold(static_cast<TaskId>(i)));
    SLADE_RETURN_NOT_OK(
        writer.WriteRow(std::vector<std::string>{buf}));
  }
  return writer.Close();
}

Result<std::vector<CrowdsourcingTask>> LoadBatchWorkloadCsv(
    const std::string& path) {
  SLADE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  SLADE_RETURN_NOT_OK(CheckHeader(rows, {"task", "threshold"}, path));
  std::vector<CrowdsourcingTask> tasks;
  std::vector<double> current;
  uint64_t current_index = 0;
  auto flush = [&]() -> Status {
    if (current.empty()) return Status::OK();
    auto task = CrowdsourcingTask::FromThresholds(std::move(current));
    if (!task.ok()) return task.status();
    tasks.push_back(std::move(task).ValueOrDie());
    current.clear();
    return Status::OK();
  };
  bool seen_any = false;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 2) {
      return Status::InvalidArgument(path + ": row " + std::to_string(r) +
                                     " needs 2 cells");
    }
    SLADE_ASSIGN_OR_RETURN(uint64_t index, ParseUint(rows[r][0]));
    SLADE_ASSIGN_OR_RETURN(double threshold, ParseDouble(rows[r][1]));
    if (!seen_any) {
      if (index != 0) {
        return Status::InvalidArgument(path + ": first task index must be 0");
      }
      seen_any = true;
    } else if (index == current_index + 1) {
      SLADE_RETURN_NOT_OK(flush());
      current_index = index;
    } else if (index != current_index) {
      return Status::InvalidArgument(
          path + ": row " + std::to_string(r) + ": task index " +
          std::to_string(index) + " after " + std::to_string(current_index) +
          " (indices must start at 0 and increase by at most 1)");
    }
    current.push_back(threshold);
  }
  SLADE_RETURN_NOT_OK(flush());
  if (tasks.empty()) {
    return Status::InvalidArgument(path + ": empty workload");
  }
  return tasks;
}

Status SaveBatchWorkloadCsv(const std::vector<CrowdsourcingTask>& tasks,
                            const std::string& path) {
  CsvWriter writer;
  SLADE_RETURN_NOT_OK(writer.Open(path, {"task", "threshold"}));
  char buf[64];
  for (size_t k = 0; k < tasks.size(); ++k) {
    for (size_t i = 0; i < tasks[k].size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.10g",
                    tasks[k].threshold(static_cast<TaskId>(i)));
      SLADE_RETURN_NOT_OK(writer.WriteRow(
          std::vector<std::string>{std::to_string(k), buf}));
    }
  }
  return writer.Close();
}

Result<std::vector<TimedSubmission>> LoadTimedWorkloadCsv(
    const std::string& path) {
  SLADE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  SLADE_RETURN_NOT_OK(CheckHeader(
      rows, {"arrival_ms", "requester", "task", "threshold"}, path));

  std::vector<TimedSubmission> submissions;
  // State of the submission being accumulated.
  std::vector<std::vector<double>> tasks;  // per-task thresholds
  double arrival_ms = 0.0;
  std::string requester;
  bool open = false;

  auto flush = [&]() -> Status {
    if (!open) return Status::OK();
    TimedSubmission submission;
    submission.arrival_ms = arrival_ms;
    submission.requester = requester;
    for (std::vector<double>& thresholds : tasks) {
      auto task = CrowdsourcingTask::FromThresholds(std::move(thresholds));
      if (!task.ok()) return task.status();
      submission.tasks.push_back(std::move(task).ValueOrDie());
    }
    submissions.push_back(std::move(submission));
    tasks.clear();
    open = false;
    return Status::OK();
  };

  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 4) {
      return Status::InvalidArgument(path + ": row " + std::to_string(r) +
                                     " needs 4 cells");
    }
    SLADE_ASSIGN_OR_RETURN(double ms, ParseDouble(rows[r][0]));
    const std::string& who = rows[r][1];
    SLADE_ASSIGN_OR_RETURN(uint64_t index, ParseUint(rows[r][2]));
    SLADE_ASSIGN_OR_RETURN(double threshold, ParseDouble(rows[r][3]));

    if (open && (ms != arrival_ms || who != requester)) {
      if (ms < arrival_ms) {
        return Status::InvalidArgument(
            path + ": row " + std::to_string(r) + ": arrival_ms " +
            std::to_string(ms) + " decreases (previous " +
            std::to_string(arrival_ms) + ")");
      }
      SLADE_RETURN_NOT_OK(flush());
    }
    if (!open) {
      arrival_ms = ms;
      requester = who;
      open = true;
    }
    // The batch-workload indexing rule, per submission: indices start at 0
    // and increase by at most 1, so consecutive rows are unambiguous.
    if (index > tasks.size()) {
      return Status::InvalidArgument(
          path + ": row " + std::to_string(r) + ": task index " +
          std::to_string(index) + " skips ahead (submission has " +
          std::to_string(tasks.size()) + " tasks so far)");
    }
    if (tasks.size() > 0 && index + 1 < tasks.size()) {
      return Status::InvalidArgument(
          path + ": row " + std::to_string(r) + ": task index " +
          std::to_string(index) +
          " goes backwards within a submission (use a new arrival_ms or "
          "requester for a new submission)");
    }
    if (index == tasks.size()) tasks.emplace_back();
    tasks.back().push_back(threshold);
  }
  SLADE_RETURN_NOT_OK(flush());
  if (submissions.empty()) {
    return Status::InvalidArgument(path + ": empty timed workload");
  }
  return submissions;
}

Status SaveTimedWorkloadCsv(const std::vector<TimedSubmission>& submissions,
                            const std::string& path) {
  CsvWriter writer;
  SLADE_RETURN_NOT_OK(
      writer.Open(path, {"arrival_ms", "requester", "task", "threshold"}));
  char buf[64];
  for (size_t s = 0; s < submissions.size(); ++s) {
    const TimedSubmission& submission = submissions[s];
    // The format keys submission boundaries on (arrival_ms, requester)
    // changing between consecutive rows, so adjacent submissions sharing
    // both would merge (or fail to parse) on reload. Refuse rather than
    // corrupt the round trip.
    if (s > 0 && submissions[s - 1].arrival_ms == submission.arrival_ms &&
        submissions[s - 1].requester == submission.requester) {
      return Status::InvalidArgument(
          path + ": submissions " + std::to_string(s - 1) + " and " +
          std::to_string(s) + " share arrival_ms and requester '" +
          submission.requester +
          "'; the CSV format cannot separate them -- nudge one arrival_ms");
    }
    char ms[64];
    std::snprintf(ms, sizeof(ms), "%.10g", submission.arrival_ms);
    for (size_t k = 0; k < submission.tasks.size(); ++k) {
      const CrowdsourcingTask& task = submission.tasks[k];
      for (size_t i = 0; i < task.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%.10g",
                      task.threshold(static_cast<TaskId>(i)));
        SLADE_RETURN_NOT_OK(writer.WriteRow(std::vector<std::string>{
            ms, submission.requester, std::to_string(k), buf}));
      }
    }
  }
  return writer.Close();
}

Status SavePlanCsv(const DecompositionPlan& plan, const std::string& path) {
  CsvWriter writer;
  SLADE_RETURN_NOT_OK(writer.Open(path, {"cardinality", "copies", "tasks"}));
  for (const BinPlacement& p : plan.placements()) {
    std::string tasks;
    for (size_t i = 0; i < p.tasks.size(); ++i) {
      tasks += (i ? ";" : "") + std::to_string(p.tasks[i]);
    }
    SLADE_RETURN_NOT_OK(writer.WriteRow(std::vector<std::string>{
        std::to_string(p.cardinality), std::to_string(p.copies), tasks}));
  }
  return writer.Close();
}

Result<DecompositionPlan> LoadPlanCsv(const std::string& path) {
  SLADE_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  SLADE_RETURN_NOT_OK(
      CheckHeader(rows, {"cardinality", "copies", "tasks"}, path));
  DecompositionPlan plan;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 3) {
      return Status::InvalidArgument(path + ": row " + std::to_string(r) +
                                     " needs 3 cells");
    }
    SLADE_ASSIGN_OR_RETURN(uint64_t cardinality, ParseUint(rows[r][0]));
    SLADE_ASSIGN_OR_RETURN(uint64_t copies, ParseUint(rows[r][1]));
    std::vector<TaskId> tasks;
    const std::string& joined = rows[r][2];
    size_t start = 0;
    while (start < joined.size()) {
      size_t semi = joined.find(';', start);
      if (semi == std::string::npos) semi = joined.size();
      SLADE_ASSIGN_OR_RETURN(
          uint64_t id, ParseUint(joined.substr(start, semi - start)));
      tasks.push_back(static_cast<TaskId>(id));
      start = semi + 1;
    }
    plan.Add(static_cast<uint32_t>(cardinality),
             static_cast<uint32_t>(copies), std::move(tasks));
  }
  return plan;
}

}  // namespace slade
