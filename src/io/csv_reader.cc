#include "io/csv_reader.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace slade {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  bool row_has_content = false;

  const size_t size = text.size();
  for (size_t i = 0; i < size; ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < size && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted cell near offset " +
              std::to_string(i));
        }
        in_quotes = true;
        cell_was_quoted = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        cell_was_quoted = false;
        row_has_content = true;
        break;
      case '\r':
        // Swallow; the following '\n' terminates the record.
        break;
      case '\n':
        if (row_has_content || !cell.empty() || cell_was_quoted) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        cell_was_quoted = false;
        row_has_content = false;
        break;
      default:
        cell += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted cell");
  }
  if (row_has_content || !cell.empty() || cell_was_quoted) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Result<double> ParseDouble(const std::string& cell) {
  if (cell.empty()) return Status::InvalidArgument("empty numeric cell");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + cell + "'");
  }
  return value;
}

Result<uint64_t> ParseUint(const std::string& cell) {
  if (cell.empty()) return Status::InvalidArgument("empty numeric cell");
  for (char c : cell) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("not a non-negative integer: '" +
                                     cell + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(cell.c_str(), &end, 10);
  if (errno != 0 || *end != '\0') {
    return Status::InvalidArgument("integer out of range: '" + cell + "'");
  }
  return static_cast<uint64_t>(value);
}

}  // namespace slade
