// Copyright (c) the SLADE reproduction authors.
// CSV parsing for the CLI tool and profile/threshold file formats.

#ifndef SLADE_IO_CSV_READER_H_
#define SLADE_IO_CSV_READER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace slade {

/// \brief Parses RFC-4180-style CSV text: comma separated, double quotes
/// escape cells containing commas/quotes/newlines, `""` is a literal
/// quote. CRLF and LF line endings both accepted; a trailing newline does
/// not produce an empty record.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// \brief Reads and parses a CSV file. IOError if unreadable,
/// InvalidArgument on malformed quoting.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// \brief Strict double parser ("1.5e-3" ok, "1.5x" not).
Result<double> ParseDouble(const std::string& cell);

/// \brief Strict unsigned parser.
Result<uint64_t> ParseUint(const std::string& cell);

}  // namespace slade

#endif  // SLADE_IO_CSV_READER_H_
